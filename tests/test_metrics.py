"""Tests for the measurement utilities (repro.obs.timing)."""

from __future__ import annotations

import time

from repro.obs import (
    LatencyStats,
    Timer,
    per_value_latency,
    speedup_series,
    throughput_mb_per_s,
    time_call,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_time_call(self):
        assert time_call(lambda: time.sleep(0.01)) >= 0.009


class TestPerValueLatency:
    def test_reports_reasonable_numbers(self):
        stats = per_value_latency(lambda: 1 + 1, batch=1000, repeats=3, warmup=100)
        assert stats.iterations == 3000
        assert 0 < stats.mean_ns < 100_000
        assert stats.median_ns > 0

    def test_slower_function_measures_higher(self):
        fast = per_value_latency(lambda: None, batch=2000, repeats=3, warmup=10)

        def slow():
            return sum(range(100))

        slow_stats = per_value_latency(slow, batch=2000, repeats=3, warmup=10)
        assert slow_stats.mean_ns > fast.mean_ns

    def test_stats_repr(self):
        stats = LatencyStats(123.4, 120.0, 5.0, 100)
        assert "ns" in str(stats)


class TestThroughput:
    def test_mb_per_second(self):
        assert throughput_mb_per_s(1024 * 1024, 1.0) == 1.0
        assert throughput_mb_per_s(1024 * 1024, 0.5) == 2.0

    def test_zero_seconds(self):
        assert throughput_mb_per_s(100, 0.0) == 0.0


class TestSpeedupSeries:
    def test_relative_to_first(self):
        assert speedup_series([10.0, 5.0, 2.5]) == [1.0, 2.0, 4.0]

    def test_empty(self):
        assert speedup_series([]) == []

    def test_zero_baseline(self):
        assert speedup_series([0.0, 1.0]) == [0.0, 0.0]
