"""Tests for the dbsynth command line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli.main import main
from repro.suites.imdb import build_imdb_database


@pytest.fixture
def source_db(tmp_path):
    path = str(tmp_path / "source.db")
    adapter = build_imdb_database(path, movies=40, people=60, seed=13)
    adapter.close()
    return path


@pytest.fixture
def project_dir(source_db, tmp_path):
    directory = str(tmp_path / "proj")
    assert main(["extract", source_db, "-o", directory, "--sample-fraction", "0.9"]) == 0
    return directory


class TestExtract:
    def test_creates_project_files(self, project_dir):
        assert os.path.exists(os.path.join(project_dir, "model.xml"))
        assert os.path.exists(os.path.join(project_dir, "schema.sql"))
        assert os.path.isdir(os.path.join(project_dir, "artifacts"))

    def test_verbose_prints_decisions(self, source_db, tmp_path, capsys):
        directory = str(tmp_path / "proj2")
        main(["extract", source_db, "-o", directory, "-v"])
        out = capsys.readouterr().out
        assert "movies.movie_id" in out
        assert "IdGenerator" in out

    def test_no_sample_mode(self, source_db, tmp_path):
        directory = str(tmp_path / "proj3")
        assert main(["extract", source_db, "-o", directory, "--no-sample"]) == 0
        assert not os.path.isdir(os.path.join(directory, "artifacts"))

    def test_timings_printed(self, source_db, tmp_path, capsys):
        main(["extract", source_db, "-o", str(tmp_path / "p")])
        out = capsys.readouterr().out
        assert "timings:" in out
        assert "min/max" in out


class TestPreview:
    def test_preview_model(self, project_dir, capsys):
        assert main(["preview", "--model", project_dir, "--table", "movies",
                     "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "-- movies" in out
        assert "movie_id | title" in out

    def test_preview_suite(self, capsys):
        assert main(["preview", "--suite", "tpch", "--sf", "0.001",
                     "--table", "region", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "AFRICA" in out

    def test_preview_all_tables(self, capsys):
        assert main(["preview", "--suite", "ssb", "--sf", "0.0001", "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "-- lineorder" in out

    def test_requires_model_or_suite(self, capsys):
        assert main(["preview"]) == 2
        assert "error:" in capsys.readouterr().err


class TestGenerate:
    def test_generate_files(self, project_dir, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        assert main(["generate", "--model", project_dir, "--kind", "file",
                     "-d", out_dir, "-q"]) == 0
        assert os.path.exists(os.path.join(out_dir, "movies.tbl"))
        assert "rows" in capsys.readouterr().out

    def test_generate_null_sink(self, capsys):
        assert main(["generate", "--suite", "tpch", "--sf", "0.0005",
                     "--kind", "null", "-q", "-w", "2"]) == 0
        assert "MB/s" in capsys.readouterr().out

    def test_generate_process_backend(self, capsys):
        assert main(["generate", "--suite", "tpch", "--sf", "0.0005",
                     "--kind", "null", "-q", "-w", "2",
                     "--backend", "process", "--inflight-extra", "3"]) == 0
        out = capsys.readouterr().out
        assert "process workers" in out

    def test_generate_backend_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "--suite", "tpch", "--kind", "null",
                  "--backend", "fiber"])

    def test_generate_sqlite(self, project_dir, tmp_path):
        db_path = str(tmp_path / "target.db")
        assert main(["generate", "--model", project_dir, "--kind", "sqlite",
                     "--format", "sql", "--database", db_path, "-q"]) == 0
        from repro.db.sqlite_adapter import SQLiteAdapter

        with SQLiteAdapter(db_path) as target:
            assert target.row_count("movies") == 40

    def test_property_overrides(self, capsys):
        assert main(["generate", "--suite", "tpch", "--kind", "null", "-q",
                     "-p", "lineitem_size=100", "-p", "orders_size=25",
                     "--sf", "0.0001"]) == 0
        out = capsys.readouterr().out
        assert "rows" in out

    def test_scale_factor_applies_to_model(self, project_dir, capsys):
        assert main(["preview", "--model", project_dir, "--table", "movies",
                     "--sf", "0.5", "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "(20 rows)" in out


class TestTranslate:
    def test_translate_model(self, project_dir, capsys):
        assert main(["translate", "--model", project_dir]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE movies" in out

    def test_translate_suite_dialect(self, capsys):
        assert main(["translate", "--suite", "tpch", "--dialect", "postgres"]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE lineitem" in out


class TestVerify:
    def test_verify_pass(self, source_db, project_dir, tmp_path, capsys):
        target = str(tmp_path / "target.db")
        main(["generate", "--model", project_dir, "--kind", "sqlite",
              "--format", "sql", "--database", target, "-q"])
        code = main(["verify", "--model", project_dir, "--source", source_db,
                     "--target", target])
        out = capsys.readouterr().out
        assert "pass rate:" in out
        assert code in (0, 1)  # statistical; usually 0

    def test_verify_against_empty_target_fails(self, source_db, project_dir,
                                               tmp_path, capsys):
        target = str(tmp_path / "empty.db")
        from repro.core.project import DBSynthProject
        from repro.core.translator import SchemaTranslator
        from repro.db.sqlite_adapter import SQLiteAdapter

        schema, _ = DBSynthProject.load_saved(project_dir)
        with SQLiteAdapter(target) as adapter:
            SchemaTranslator().apply(schema, adapter)
        assert main(["verify", "--model", project_dir, "--source", source_db,
                     "--target", target]) == 1


class TestUpdate:
    def test_update_plan(self, capsys):
        assert main(["update", "--suite", "tpch", "--sf", "0.001",
                     "--table", "orders", "--epoch", "1"]) == 0
        out = capsys.readouterr().out
        assert "inserts" in out and "updates" in out and "deletes" in out

    def test_update_show_events(self, project_dir, capsys):
        assert main(["update", "--model", project_dir, "--table", "movies",
                     "--epoch", "1", "--show"]) == 0
        out = capsys.readouterr().out
        assert "insert" in out


class TestErrors:
    def test_unknown_model_directory(self, capsys):
        assert main(["preview", "--model", "/nonexistent/dir"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
