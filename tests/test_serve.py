"""``dbsynth serve``: endpoints, error mapping, concurrent determinism.

The headline guarantee: N concurrent clients requesting overlapping
slices all receive payloads byte-identical to a cold single-shot batch
run of the same model — the server computes, never caches or shares
response state, so concurrency cannot perturb bytes.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Dataset, clear_engine_cache
from repro.engine import GenerationEngine
from repro.obs.registry import MetricsRegistry
from repro.output.config import OutputConfig
from repro.scheduler import generate
from repro.serve import DataServer

from tests.conftest import demo_schema

PACKAGE_SIZE = 50


@pytest.fixture(scope="module")
def server():
    clear_engine_cache()
    dataset = Dataset(demo_schema(), package_size=PACKAGE_SIZE)
    registry = MetricsRegistry()
    server = DataServer(dataset, workers=4, registry=registry).start()
    yield server
    server.stop()
    clear_engine_cache()


@pytest.fixture(scope="module")
def cold_batch():
    """Cold single-shot batch outputs (fresh engine, not the server's)."""
    engine = GenerationEngine(demo_schema())
    outputs = {}
    for fmt in ("csv", "json"):
        output = OutputConfig(kind="memory", format=fmt)
        generate(engine, output, package_size=PACKAGE_SIZE)
        outputs[fmt] = {
            name: output.memory_output(name).encode("utf-8")
            for name in engine.sizes
        }
    return outputs


def fetch(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = fetch(server, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["fingerprint"] == server.dataset.fingerprint

    def test_tables(self, server):
        _, _, body = fetch(server, "/tables")
        payload = json.loads(body)
        assert payload["tables"]["customer"]["rows"] == 60
        assert payload["tables"]["orders"]["columns"][0] == "o_id"
        assert payload["package_size"] == PACKAGE_SIZE
        assert "csv" in payload["formats"]

    def test_slice_content_type_from_registry(self, server):
        _, headers, _ = fetch(server, "/table/customer/rows/0-5?format=csv")
        assert headers["Content-Type"] == "text/csv; charset=utf-8"
        assert headers["Transfer-Encoding"] == "chunked"
        assert headers["X-Dbsynth-Fingerprint"] == server.dataset.fingerprint
        _, headers, _ = fetch(server, "/table/customer/rows/0-5?format=json")
        assert headers["Content-Type"] == "application/x-ndjson"

    def test_metrics_endpoint(self, server):
        fetch(server, "/healthz")
        _, headers, body = fetch(server, "/metrics")
        text = body.decode("utf-8")
        assert headers["Content-Type"].startswith("text/plain")
        assert 'serve_requests_total{route="healthz",status="200"}' in text


class TestErrorMapping:
    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(server, "/bogus")
        assert info.value.code == 404

    def test_unknown_table_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(server, "/table/nope/rows/0-5")
        assert info.value.code == 404
        assert "no such table" in json.load(info.value)["error"]

    def test_unknown_format_400_lists_known(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(server, "/table/customer/rows/0-5?format=bogus")
        assert info.value.code == 400
        assert "known formats" in json.load(info.value)["error"]

    def test_bad_range_400(self, server):
        for bad in ("0-999", "9-4", "x-y"):
            with pytest.raises(urllib.error.HTTPError) as info:
                fetch(server, f"/table/customer/rows/{bad}")
            assert info.value.code == 400

    def test_error_counter_increments(self, server):
        counter = server.registry.get("serve_requests_total")
        before = counter.value(route="slice", status="400")
        with pytest.raises(urllib.error.HTTPError):
            fetch(server, "/table/customer/rows/0-999")
        # metrics land in the handler's finally block, which may run a
        # beat after the client has read the response — poll briefly.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if counter.value(route="slice", status="400") == before + 1:
                break
            time.sleep(0.01)
        assert counter.value(route="slice", status="400") == before + 1


class TestByteIdentityOverHttp:
    @pytest.mark.parametrize("fmt", ["csv", "json"])
    def test_full_table_equals_cold_batch(self, server, cold_batch, fmt):
        for table, size in server.dataset.tables.items():
            _, _, body = fetch(
                server, f"/table/{table}/rows/0-{size}?format={fmt}"
            )
            assert body == cold_batch[fmt][table], (table, fmt)

    def test_adjacent_ranges_reassemble_file(self, server, cold_batch):
        cuts = [0, 30, 50, 111, 180]
        joined = b"".join(
            fetch(server, f"/table/orders/rows/{a}-{b}?format=csv")[2]
            for a, b in zip(cuts, cuts[1:])
        )
        assert joined == cold_batch["csv"]["orders"]

    def test_arrow_slice_over_http(self, server):
        pytest.importorskip("pyarrow")
        import pyarrow as pa

        _, headers, body = fetch(server, "/table/customer/rows/0-60?format=arrow")
        assert headers["Content-Type"] == "application/vnd.apache.arrow.stream"
        table = pa.ipc.open_stream(body).read_all()
        assert table.num_rows == 60
        rows = server.dataset.slice("customer", 0, 60)
        assert table.column("c_id").to_pylist() == [row[0] for row in rows]


class TestConcurrentDeterminism:
    def test_overlapping_slices_match_cold_batch(self, server, cold_batch):
        """Hundreds of concurrent overlapping requests, mixed formats."""
        requests = []
        for fmt in ("csv", "json"):
            reference = cold_batch[fmt]["orders"].decode("utf-8")
            lines = reference.splitlines(keepends=True)
            for start, stop in [
                (0, 180), (0, 50), (25, 75), (49, 51), (100, 180),
                (0, 1), (179, 180), (60, 120), (0, 180), (33, 167),
            ]:
                expected = "".join(lines[start:stop]).encode("utf-8")
                requests.append((fmt, start, stop, expected))
        requests = requests * 6  # 120 overlapping in-flight fetches

        def hit(item):
            fmt, start, stop, expected = item
            _, _, body = fetch(
                server, f"/table/orders/rows/{start}-{stop}?format={fmt}"
            )
            return body == expected

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(hit, requests))
        assert all(results)

    def test_repeated_fetch_is_stable(self, server):
        payloads = {
            fetch(server, "/table/customer/rows/10-55?format=csv")[2]
            for _ in range(8)
        }
        assert len(payloads) == 1
