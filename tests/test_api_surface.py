"""The 2.0 public API surface.

2.0 finishes the 1.1 deprecation cycle: scheduler configuration is
keyword-only (the positional shim is gone — positionals now raise
``TypeError``), ``repro.metrics`` no longer exists (timing helpers live
in ``repro.obs``), and the ``Dataset`` facade plus the format registry
are promoted to the top-level package.
"""

from __future__ import annotations

import importlib
import sys

import pytest

import repro
from repro.engine import GenerationEngine
from repro.output.config import OutputConfig
from repro.scheduler import Scheduler, generate

from tests.conftest import demo_schema


@pytest.fixture
def engine() -> GenerationEngine:
    return GenerationEngine(demo_schema())


class TestSchedulerKeywordOnly:
    def test_positional_config_raises(self, engine):
        with pytest.raises(TypeError):
            Scheduler(engine, OutputConfig(kind="null"), 2, 50)

    def test_keyword_form_works(self, engine):
        scheduler = Scheduler(
            engine, OutputConfig(kind="null"), workers=2, package_size=50,
            backend="thread", inflight_extra=3,
        )
        assert scheduler.workers == 2
        report = scheduler.run()
        assert report.rows == engine.total_rows()

    def test_generate_positional_config_raises(self, engine):
        with pytest.raises(TypeError):
            generate(engine, OutputConfig(kind="null"), 2, 50)

    def test_generate_keyword_form_works(self, engine):
        report = generate(
            engine, OutputConfig(kind="null"), workers=1, tables=["customer"]
        )
        assert report.rows == engine.sizes["customer"]


class TestMetricsModuleRemoved:
    def test_import_fails(self):
        sys.modules.pop("repro.metrics", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.metrics")

    def test_timing_helpers_live_in_obs(self):
        from repro.obs import Timer, per_value_latency, throughput_mb_per_s

        assert callable(throughput_mb_per_s)
        assert callable(per_value_latency)
        assert Timer is not None


class TestTopLevelSurface:
    def test_version_is_2(self):
        assert repro.__version__.startswith("2.")

    def test_dataset_promoted(self):
        for name in (
            "Dataset",
            "bound_engine",
            "engine_cache_info",
            "clear_engine_cache",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_format_registry_promoted(self):
        for name in ("FormatSpec", "format_spec", "known_formats", "register_format"):
            assert name in repro.__all__
        assert set(repro.known_formats()) >= {"csv", "json", "xml", "sql", "arrow"}

    def test_quickstart_mentions_dataset(self):
        assert "Dataset" in repro.__doc__
