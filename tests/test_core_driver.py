"""Tests for the benchmark driver (§7 benchmarking automation)."""

from __future__ import annotations

import pytest

from repro.core.driver import BenchmarkDriver, DriverReport, QueryExecution
from repro.core.loader import DataLoader
from repro.core.queries import (
    Aggregate,
    Op,
    ParameterSpec,
    Predicate,
    Query,
    QueryTemplate,
)
from repro.core.translator import SchemaTranslator
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.engine import GenerationEngine
from repro.suites.tpch import tpch_artifacts, tpch_schema
from repro.suites.tpch.workload import DEFAULT_TEMPLATES, PREDICTED_QUERIES
from tests.conftest import demo_schema


@pytest.fixture(scope="module")
def demo_setup():
    schema = demo_schema()
    adapter = SQLiteAdapter(":memory:")
    SchemaTranslator().apply(schema, adapter)
    DataLoader(adapter).load(GenerationEngine(schema))
    yield schema, adapter
    adapter.close()


class TestRunQuery:
    def test_timed_and_graded(self, demo_setup):
        schema, adapter = demo_setup
        driver = BenchmarkDriver(schema, adapter)
        execution = driver.run_query(
            "count", Query("customer", [Aggregate("count")])
        )
        assert execution.succeeded
        assert execution.seconds >= 0
        assert execution.rows == 1
        assert execution.first_row == (60,)
        assert execution.prediction_ok is True

    def test_prediction_grading_catches_wrong_data(self, demo_setup):
        schema, _adapter = demo_setup
        empty = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, empty)
        empty.insert_rows("customer", ["c_id"], [(1,)])  # 1 row, model says 60
        driver = BenchmarkDriver(schema, empty)
        execution = driver.run_query(
            "count", Query("customer", [Aggregate("count")])
        )
        assert execution.prediction_ok is False
        empty.close()

    def test_unpredictable_query_still_timed(self, demo_setup):
        schema, adapter = demo_setup
        driver = BenchmarkDriver(schema, adapter)
        # c_name is a PersonNameGenerator: no analytic model → no grading.
        execution = driver.run_query(
            "names", Query("customer", [Aggregate("count")],
                           [Predicate("c_name", Op.EQ, "Ann Smith")])
        )
        assert execution.succeeded
        assert execution.prediction_ok is None

    def test_duplicate_aggregates_graded_positionally(self, demo_setup):
        # Regression: two COUNT(*) entries render identically; keying
        # predictions by SQL text alone collapsed them, shifting every
        # later prediction onto the wrong result column (the AVG below
        # was graded against a COUNT and always failed).
        schema, adapter = demo_setup
        driver = BenchmarkDriver(schema, adapter)
        execution = driver.run_query(
            "dups",
            Query("orders", [
                Aggregate("count"),
                Aggregate("count"),
                Aggregate("avg", "o_quantity"),
            ]),
        )
        assert execution.succeeded
        assert execution.predictions is not None
        assert list(execution.predictions) == [
            "COUNT(*)", "COUNT(*)#2", "AVG(o_quantity)",
        ]
        assert execution.first_row[0] == execution.first_row[1] == 180
        assert execution.prediction_ok is True

    def test_sql_error_captured_not_raised(self, demo_setup):
        schema, adapter = demo_setup
        driver = BenchmarkDriver(schema, adapter)
        execution = driver._run_sql("bad", "SELECT * FROM nowhere")
        assert not execution.succeeded
        assert "nowhere" in (execution.error or "")


class TestRunTemplate:
    TEMPLATE = QueryTemplate(
        "probe",
        "SELECT COUNT(*) FROM orders WHERE o_quantity < :q",
        [ParameterSpec("q", "orders", "o_quantity", "numeric")],
    )

    def test_instances_run_and_differ(self, demo_setup):
        schema, adapter = demo_setup
        driver = BenchmarkDriver(schema, adapter)
        executions = driver.run_template(self.TEMPLATE, 4)
        assert len(executions) == 4
        assert all(e.succeeded for e in executions)
        assert len({e.sql for e in executions}) > 1

    def test_repeatable(self, demo_setup):
        schema, adapter = demo_setup
        a = BenchmarkDriver(schema, adapter).run_template(self.TEMPLATE, 3)
        b = BenchmarkDriver(schema, adapter).run_template(self.TEMPLATE, 3)
        assert [e.sql for e in a] == [e.sql for e in b]


class TestDriverReport:
    def test_summary_counts(self, demo_setup):
        schema, adapter = demo_setup
        driver = BenchmarkDriver(schema, adapter)
        report = driver.run_workload(
            templates=[(self_template(), 2)],
            queries=[("count", Query("customer", [Aggregate("count")]))],
        )
        assert len(report.executions) == 3
        assert report.failed == 0
        assert report.predictions_checked == 1
        assert report.predictions_passed == 1
        summary = report.summary_lines()
        assert summary[-1].startswith("total: 3 queries")

    def test_failed_counted(self):
        report = DriverReport([
            QueryExecution("a", "SELECT 1", 0.0, 1),
            QueryExecution("b", "bad", 0.0, 0, error="boom"),
        ])
        assert report.failed == 1
        assert report.succeeded == 1


def self_template() -> QueryTemplate:
    return TestRunTemplate.TEMPLATE


class TestTpchWorkload:
    @pytest.fixture(scope="class")
    def tpch_setup(self):
        schema = tpch_schema(0.001)
        artifacts = tpch_artifacts()
        adapter = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, adapter)
        DataLoader(adapter).load(GenerationEngine(schema, artifacts))
        yield schema, artifacts, adapter
        adapter.close()

    def test_default_workload_runs_clean(self, tpch_setup):
        schema, artifacts, adapter = tpch_setup
        driver = BenchmarkDriver(schema, adapter, artifacts)
        report = driver.run_workload(DEFAULT_TEMPLATES, PREDICTED_QUERIES)
        assert report.failed == 0, "\n".join(report.summary_lines())
        assert report.predictions_checked == len(PREDICTED_QUERIES)
        assert report.predictions_passed >= report.predictions_checked - 1

    def test_workload_cli(self, tpch_setup, tmp_path, capsys):
        schema, artifacts, _adapter = tpch_setup
        db_path = str(tmp_path / "wl.db")
        with SQLiteAdapter(db_path) as target:
            SchemaTranslator().apply(schema, target)
            DataLoader(target).load(GenerationEngine(schema, artifacts))
        from repro.cli.main import main

        code = main(["workload", "--suite", "tpch", "--sf", "0.001",
                     "--database", db_path, "--count", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pricing_summary#0" in out
        assert "predictions" in out
