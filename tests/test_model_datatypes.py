"""Tests for SQL type parsing and rendering."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.model.datatypes import (
    DataType,
    SqlType,
    TypeFamily,
    parse_type,
    python_type_for,
)


class TestParseType:
    def test_simple(self):
        dtype = parse_type("BIGINT")
        assert dtype.base is SqlType.BIGINT
        assert dtype.length is None

    def test_case_insensitive(self):
        assert parse_type("varchar(44)").base is SqlType.VARCHAR

    def test_length(self):
        dtype = parse_type("VARCHAR(44)")
        assert dtype.length == 44

    def test_precision_and_scale(self):
        dtype = parse_type("DECIMAL(15,2)")
        assert dtype.length == 15
        assert dtype.scale == 2

    def test_whitespace_tolerant(self):
        dtype = parse_type("  decimal ( 10 , 3 ) ")
        assert dtype.length == 10
        assert dtype.scale == 3

    def test_two_word_types(self):
        assert parse_type("DOUBLE PRECISION").base is SqlType.DOUBLE
        assert parse_type("CHARACTER VARYING(10)").base is SqlType.VARCHAR

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("INT", SqlType.INTEGER),
            ("INT8", SqlType.BIGINT),
            ("TINYINT", SqlType.SMALLINT),
            ("DATETIME", SqlType.TIMESTAMP),
            ("BOOL", SqlType.BOOLEAN),
            ("CLOB", SqlType.TEXT),
            ("BYTEA", SqlType.BLOB),
            ("SERIAL", SqlType.INTEGER),
        ],
    )
    def test_aliases(self, alias, expected):
        assert parse_type(alias).base is expected

    def test_unknown_type_raises(self):
        with pytest.raises(ModelError, match="unsupported SQL type"):
            parse_type("GEOMETRY")

    def test_garbage_raises(self):
        with pytest.raises(ModelError):
            parse_type("VARCHAR(")

    def test_empty_raises(self):
        with pytest.raises(ModelError):
            parse_type("")


class TestRender:
    def test_round_trip(self):
        for text in ("BIGINT", "VARCHAR(44)", "DECIMAL(15,2)", "DATE"):
            assert parse_type(parse_type(text).render()) == parse_type(text)

    def test_render_plain(self):
        assert DataType(SqlType.INTEGER).render() == "INTEGER"

    def test_render_with_length(self):
        assert DataType(SqlType.CHAR, 10).render() == "CHAR(10)"

    def test_render_with_scale(self):
        assert DataType(SqlType.NUMERIC, 12, 4).render() == "NUMERIC(12,4)"


class TestFamilies:
    @pytest.mark.parametrize(
        "text,family",
        [
            ("SMALLINT", TypeFamily.INTEGER),
            ("REAL", TypeFamily.FLOAT),
            ("NUMERIC(9,2)", TypeFamily.DECIMAL),
            ("TEXT", TypeFamily.TEXT),
            ("DATE", TypeFamily.DATE),
            ("TIMESTAMP", TypeFamily.TIMESTAMP),
            ("BOOLEAN", TypeFamily.BOOLEAN),
            ("BLOB", TypeFamily.BINARY),
        ],
    )
    def test_family(self, text, family):
        assert parse_type(text).family is family


class TestPythonTypeFor:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("BIGINT", int),
            ("DOUBLE PRECISION", float),
            ("DECIMAL(10,2)", float),
            ("VARCHAR(5)", str),
            ("DATE", str),
            ("BOOLEAN", bool),
            ("BLOB", bytes),
        ],
    )
    def test_mapping(self, text, expected):
        assert python_type_for(parse_type(text)) is expected
