"""End-to-end telemetry: a full pipeline run with tracing and metrics
enabled must produce a consistent span tree and metrics that exactly
match the RunReport (the acceptance criterion of the telemetry work)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.extraction import SchemaExtractor
from repro.core.model_builder import build_model
from repro.core.profiling import DataProfiler
from repro.engine import GenerationEngine
from repro.output.config import OutputConfig
from repro.scheduler.scheduler import Scheduler
from repro.suites.imdb import build_imdb_database
from tests.conftest import demo_schema


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


class TestSchedulerTelemetry:
    def _run(self, workers: int):
        tracer = obs.enable_tracing()
        registry = obs.enable_metrics()
        engine = GenerationEngine(demo_schema())
        report = Scheduler(
            engine, OutputConfig(kind="null"), workers=workers, package_size=50
        ).run()
        return tracer, registry, report

    @pytest.mark.parametrize("workers", [1, 4])
    def test_metrics_match_run_report(self, workers):
        _, registry, report = self._run(workers)
        rows = registry.counter("rows_generated_total")
        bytes_counter = registry.counter("bytes_written_total")
        assert rows.total() == report.rows
        assert bytes_counter.total() == report.bytes_written
        for table in report.tables:
            assert rows.value(table=table.name) == table.rows
            assert bytes_counter.value(table=table.name) == table.bytes_written

    def test_package_counter_matches_partitioning(self):
        _, registry, report = self._run(1)
        packages = registry.counter("packages_completed_total")
        # 60 customer rows / 50 per package = 2; 180 orders / 50 = 4
        assert packages.value(table="customer") == 2
        assert packages.value(table="orders") == 4

    def test_span_tree_nests_run_package_sink(self):
        tracer, _, _ = self._run(4)
        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        runs = [s for s in spans if s.name == "scheduler.run"]
        assert len(runs) == 1
        packages = [s for s in spans if s.name == "scheduler.package"]
        assert len(packages) == 6
        assert all(p.parent_id == runs[0].span_id for p in packages)
        sink_writes = [s for s in spans if s.name == "sink.write"]
        assert sink_writes, "expected sink.write spans"
        for record in sink_writes:
            assert by_id[record.parent_id].name == "scheduler.package"

    def test_run_report_table_breakdown(self):
        _, _, report = self._run(2)
        assert {t.name for t in report.tables} == {"customer", "orders"}
        assert sum(t.rows for t in report.tables) == report.rows
        assert sum(t.bytes_written for t in report.tables) == report.bytes_written
        customer = report.table("customer")
        assert customer.rows == 60
        assert customer.seconds > 0
        assert customer.mb_per_second >= 0

    def test_value_latency_histogram_sampled(self):
        _, registry, report = self._run(1)
        histogram = registry.get("value_latency_ns")
        assert histogram is not None
        total = sum(
            histogram.snapshot(**dict(key))["count"]
            for key in histogram.label_sets()
        )
        assert total == 6  # one sample per package

    def test_disabled_telemetry_still_fills_table_reports(self):
        engine = GenerationEngine(demo_schema())
        report = Scheduler(engine, OutputConfig(kind="null"), package_size=50).run()
        assert {t.name for t in report.tables} == {"customer", "orders"}
        assert report.table("orders").rows == 180


class TestExtractionTelemetry:
    def test_extraction_and_model_spans(self, tmp_path):
        path = str(tmp_path / "source.db")
        adapter = build_imdb_database(path, movies=20, people=30, seed=3)
        tracer = obs.enable_tracing()
        extracted = SchemaExtractor(adapter).extract()
        profile = DataProfiler(adapter).profile(extracted)
        build_model(adapter, name="m")
        adapter.close()
        names = {s.name for s in tracer.spans()}
        assert {"extraction.schema", "extraction.sizes",
                "profiling.null_fractions", "profiling.min_max",
                "profiling.distinct_counts", "model.build",
                "model.table"} <= names
        assert profile is not None

    def test_phase_timings_match_spans(self, tmp_path):
        path = str(tmp_path / "source.db")
        adapter = build_imdb_database(path, movies=20, people=30, seed=3)
        tracer = obs.enable_tracing()
        extracted = SchemaExtractor(adapter).extract()
        adapter.close()
        spans = {s.name: s for s in tracer.spans()}
        assert extracted.timings.schema_seconds == pytest.approx(
            spans["extraction.schema"].duration
        )
        assert extracted.timings.sizes_seconds == pytest.approx(
            spans["extraction.sizes"].duration
        )

    def test_timings_work_without_tracer(self, tmp_path):
        path = str(tmp_path / "source.db")
        adapter = build_imdb_database(path, movies=10, people=10, seed=3)
        extracted = SchemaExtractor(adapter).extract()
        DataProfiler(adapter).profile(extracted)
        adapter.close()
        assert extracted.timings.schema_seconds > 0
        assert extracted.timings.total() > 0

    def test_model_column_metrics(self, tmp_path):
        path = str(tmp_path / "source.db")
        adapter = build_imdb_database(path, movies=20, people=30, seed=3)
        registry = obs.enable_metrics()
        result = build_model(adapter, name="m")
        adapter.close()
        chosen = registry.counter("model_columns_total")
        assert chosen.total() == len(result.decisions)


class TestEngineTelemetry:
    def test_recompute_counter_and_depth(self):
        from repro.model.schema import Field, GeneratorSpec, Schema, Table

        schema = Schema("t", seed=7)
        schema.add_table(Table("colors", "10", [
            Field.of("c_id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
            Field.of("c_name", "VARCHAR(10)",
                     GeneratorSpec("RandomStringGenerator", {"min": 3, "max": 6})),
        ]))
        schema.add_table(Table("items", "50", [
            Field.of("i_id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
            Field.of("i_color", "VARCHAR(10)", GeneratorSpec(
                "DefaultReferenceGenerator",
                {"table": "colors", "field": "c_name"})),
        ]))
        registry = obs.enable_metrics()
        engine = GenerationEngine(schema)
        list(engine.iter_rows("items"))
        assert registry.counter("engine_recomputes_total").total() == 50
        assert registry.counter("engine_recomputes_total").value(table="colors") == 50
        assert registry.gauge("engine_recompute_depth_max").value() == 1

    def test_no_metrics_no_counting(self):
        engine = GenerationEngine(demo_schema())
        list(engine.iter_rows("orders"))
        assert obs.active_metrics() is None

    def test_registry_swap_rebinds_instruments(self):
        engine = GenerationEngine(demo_schema())
        first = obs.enable_metrics()
        engine.compute_value("customer", "c_name", 0)
        second = obs.enable_metrics()
        engine.compute_value("customer", "c_name", 1)
        assert first.counter("engine_recomputes_total").total() == 1
        assert second.counter("engine_recomputes_total").total() == 1


class TestFormatterCacheTelemetry:
    def test_cache_hit_miss_counters(self):
        import datetime

        from repro.output.rows import ValueFormatter

        formatter = ValueFormatter()
        day = datetime.date(2014, 11, 30)
        formatter.format(day)
        formatter.format(day)
        formatter.format(datetime.date(2015, 1, 1))
        assert formatter.cache_misses == 2
        assert formatter.cache_hits == 1

    def test_plain_types_bypass_cache_counters(self):
        from repro.output.rows import ValueFormatter

        formatter = ValueFormatter()
        formatter.format(7)
        formatter.format("text")
        assert formatter.cache_hits == 0
        assert formatter.cache_misses == 0


class TestMuxTelemetry:
    def test_mux_accumulates_write_stats(self):
        from repro.output.sinks import MemorySink, OrderedSinkMux

        sink = MemorySink()
        mux = OrderedSinkMux(sink, "t")
        mux.submit(1, "b")  # buffered: nothing flushed yet
        assert mux.flushes == 0
        mux.submit(0, "a")  # flushes both in order
        assert mux.flushes == 2
        assert mux.write_seconds >= 0
        assert sink.getvalue() == "ab"
