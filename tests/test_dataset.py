"""The ``Dataset`` slicing facade and the bound-engine cache.

The contract under test: a slice is byte-identical to the matching
range of a batch-generated file, whatever the format, wherever the
range falls relative to work-package boundaries — because both paths
run through :func:`repro.output.formats.format_package` over the same
package partitioning.
"""

from __future__ import annotations

import pytest

from repro.api import (
    Dataset,
    bound_engine,
    clear_engine_cache,
    engine_cache_info,
)
from repro.engine import GenerationEngine
from repro.exceptions import GenerationError, OutputError
from repro.output.config import OutputConfig
from repro.output.formats import format_spec, known_formats
from repro.scheduler import generate

from tests.conftest import demo_schema


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_engine_cache()
    yield
    clear_engine_cache()


@pytest.fixture
def dataset() -> Dataset:
    # package_size smaller than the tables so slices span packages
    return Dataset(demo_schema(), package_size=50)


def batch_output(fmt: str, package_size: int = 50, **options) -> dict[str, bytes]:
    """Cold single-shot batch run into memory, per table, as bytes."""
    engine = GenerationEngine(demo_schema())
    output = OutputConfig(kind="memory", format=fmt, **options)
    generate(engine, output, package_size=package_size)
    return {
        name: output.memory_output(name).encode("utf-8")
        for name in engine.sizes
    }


class TestEngineCache:
    def test_equal_models_share_one_engine(self):
        first = Dataset(demo_schema())
        second = Dataset(demo_schema())
        assert first.engine is second.engine
        info = engine_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_different_seed_binds_fresh(self):
        first = Dataset(demo_schema(seed=1))
        second = Dataset(demo_schema(seed=2))
        assert first.engine is not second.engine
        assert first.fingerprint != second.fingerprint
        assert engine_cache_info()["misses"] == 2

    def test_from_engine_seeds_cache(self):
        engine = GenerationEngine(demo_schema())
        ds = Dataset.from_engine(engine)
        assert ds.engine is engine
        assert Dataset(demo_schema()).engine is engine

    def test_bound_engine_eviction(self):
        from repro import api

        engines = [bound_engine(demo_schema(seed=s)) for s in range(1, 10)]
        info = engine_cache_info()
        assert info["size"] == api.ENGINE_CACHE_SIZE
        # seed=1 was evicted (LRU): binding it again is a miss
        again = bound_engine(demo_schema(seed=1))
        assert again is not engines[0]

    def test_clear_resets_counters(self):
        Dataset(demo_schema())
        clear_engine_cache()
        info = engine_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0, "maxsize": 8}


class TestIntrospection:
    def test_tables_and_columns(self, dataset):
        assert dataset.tables == {"customer": 60, "orders": 180}
        assert dataset.columns("customer")[0] == "c_id"

    def test_from_suite(self):
        ds = Dataset.from_suite("tpch", scale_factor=0.001)
        assert ds.tables["nation"] == 25
        with pytest.raises(GenerationError, match="unknown suite"):
            Dataset.from_suite("nope")


class TestRowAndColumnSlices:
    def test_rows_matches_engine(self, dataset):
        rows = dataset.slice("customer", 5, 9)
        assert rows == dataset.engine.generate_rows("customer", 5, 9)
        assert len(rows) == 4

    def test_columns_form(self, dataset):
        block = dataset.slice("orders", 0, 7, format="columns")
        assert block.count == 7
        assert block.to_rows() == dataset.slice("orders", 0, 7)

    def test_default_range_is_whole_table(self, dataset):
        assert len(dataset.slice("customer")) == 60

    def test_rows_reject_format_options(self, dataset):
        with pytest.raises(OutputError, match="takes no formatting options"):
            dataset.slice("customer", 0, 5, format="rows", delimiter=",")

    def test_bad_ranges(self, dataset):
        with pytest.raises(GenerationError, match="outside table"):
            dataset.slice("customer", -1, 5)
        with pytest.raises(GenerationError, match="outside table"):
            dataset.slice("customer", 0, 61)
        with pytest.raises(GenerationError, match="outside table"):
            dataset.slice("customer", 9, 4)
        with pytest.raises(GenerationError, match="no such table"):
            dataset.slice("nope", 0, 1)


class TestByteIdentity:
    @pytest.mark.parametrize("fmt", ["csv", "json", "xml", "sql"])
    def test_full_slice_equals_batch_file(self, dataset, fmt):
        batch = batch_output(fmt)
        for table, size in dataset.tables.items():
            assert dataset.slice(table, 0, size, format=fmt) == batch[table]

    def test_adjacent_slices_concatenate_to_batch_file(self, dataset):
        batch = batch_output("csv")["orders"]
        # boundaries straddle package edges (package_size=50, size=180)
        cuts = [0, 3, 50, 77, 100, 149, 150, 180]
        joined = b"".join(
            dataset.slice("orders", a, b, format="csv")
            for a, b in zip(cuts, cuts[1:])
        )
        assert joined == batch

    def test_interior_slice_equals_batch_lines(self, dataset):
        batch = batch_output("json")["customer"].decode("utf-8")
        lines = batch.splitlines(keepends=True)
        sliced = dataset.slice("customer", 12, 58, format="json")
        assert sliced == "".join(lines[12:58]).encode("utf-8")

    def test_header_and_footer_only_at_edges(self, dataset):
        whole = dataset.slice("customer", format="xml")
        interior = dataset.slice("customer", 1, 59, format="xml")
        assert whole.startswith(b"<?xml")
        assert whole.endswith(b"</table>\n")
        assert not interior.startswith(b"<?xml")
        assert not interior.endswith(b"</table>\n")

    def test_csv_options_flow_through(self, dataset):
        batch = batch_output("csv", delimiter=",", include_header=True)
        sliced = dataset.slice(
            "customer", format="csv", delimiter=",", include_header=True
        )
        assert sliced == batch["customer"]
        assert sliced.startswith(b"c_id,c_name")

    def test_slice_independent_of_package_size_for_text(self):
        small = Dataset(demo_schema(), package_size=7)
        large = Dataset(demo_schema(), package_size=10_000)
        assert (
            small.slice("orders", 30, 120, format="csv")
            == large.slice("orders", 30, 120, format="csv")
        )


class TestRegistrySingleSource:
    def test_unknown_format_error_lists_known(self, dataset):
        with pytest.raises(OutputError, match="known formats"):
            dataset.slice("customer", 0, 5, format="bogus")
        with pytest.raises(OutputError, match="known formats"):
            OutputConfig(kind="null", format="bogus")
        with pytest.raises(OutputError, match="known formats"):
            format_spec("bogus")

    def test_error_text_is_identical_everywhere(self, dataset):
        def message(callable_):
            with pytest.raises(OutputError) as info:
                callable_()
            return str(info.value)

        assert (
            message(lambda: dataset.slice("customer", format="bogus"))
            == message(lambda: OutputConfig(format="bogus"))
            == message(lambda: format_spec("bogus"))
        )

    def test_unknown_option_error(self, dataset):
        with pytest.raises(OutputError, match="unknown slice option"):
            dataset.slice("customer", 0, 5, format="csv", sparkles=True)

    def test_mime_types_cover_registry(self):
        for name in known_formats():
            assert "/" in format_spec(name).mime_type


class TestColumnarAlignment:
    def test_arrow_misaligned_slice_refused(self, dataset):
        pytest.importorskip("pyarrow")
        with pytest.raises(OutputError, match="package-aligned"):
            dataset.slice("customer", 3, 50, format="arrow")

    def test_arrow_full_slice_equals_batch(self, dataset):
        pytest.importorskip("pyarrow")
        engine = GenerationEngine(demo_schema())
        output = OutputConfig(kind="memory", format="arrow")
        generate(engine, output, package_size=50)
        batch = output.memory_output("customer")
        assert dataset.slice("customer", 0, 60, format="arrow") == batch

    def test_parquet_slices_refused(self, dataset):
        pytest.importorskip("pyarrow")
        with pytest.raises(OutputError, match="not streamable"):
            dataset.slice("customer", 0, 50, format="parquet")

    def test_arrow_without_pyarrow_raises_cleanly(self, dataset):
        from repro.output.arrow import have_pyarrow

        if have_pyarrow():
            pytest.skip("pyarrow installed")
        with pytest.raises(OutputError, match="requires pyarrow"):
            dataset.slice("customer", 0, 50, format="arrow")
