"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.engine import GenerationEngine
from repro.generators.base import ArtifactStore
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from repro.prng.xorshift import XorShift64Star


def single_field_engine(
    spec: GeneratorSpec,
    type_text: str = "BIGINT",
    rows: int = 100,
    artifacts: ArtifactStore | None = None,
    seed: int = 42,
) -> GenerationEngine:
    """An engine whose model is one table with one field under test."""
    schema = Schema("test", seed=seed)
    schema.add_table(
        Table("t", str(rows), [Field.of("f", type_text, spec)])
    )
    return GenerationEngine(schema, artifacts)


def field_values(
    spec: GeneratorSpec,
    type_text: str = "BIGINT",
    rows: int = 100,
    artifacts: ArtifactStore | None = None,
    seed: int = 42,
) -> list:
    """Generate all values of a single-field model."""
    engine = single_field_engine(spec, type_text, rows, artifacts, seed)
    return [values[0] for values in engine.iter_rows("t")]


def demo_schema(seed: int = 42, customers: int = 60, orders: int = 180) -> Schema:
    """A two-table schema exercising references, formulas, and NULLs."""
    schema = Schema("demo", seed=seed)
    schema.properties.define("SF", "1")
    schema.properties.define("customer_size", f"{customers} * ${{SF}}")
    schema.properties.define("orders_size", f"{orders} * ${{SF}}")
    schema.add_table(Table("customer", "${customer_size}", [
        Field.of("c_id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
        Field.of("c_name", "VARCHAR(40)", GeneratorSpec("PersonNameGenerator")),
        Field.of("c_balance", "DECIMAL(12,2)", GeneratorSpec(
            "DoubleGenerator", {"min": -100.0, "max": 1000.0, "places": 2}
        )),
        Field.of("c_comment", "VARCHAR(80)", GeneratorSpec(
            "NullGenerator", {"probability": 0.25}, [GeneratorSpec("TextGenerator")]
        )),
    ]))
    schema.add_table(Table("orders", "${orders_size}", [
        Field.of("o_id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
        Field.of("o_cust", "BIGINT", GeneratorSpec(
            "DefaultReferenceGenerator", {"table": "customer", "field": "c_id"}
        )),
        Field.of("o_quantity", "INTEGER", GeneratorSpec(
            "IntGenerator", {"min": 1, "max": 50}
        )),
        Field.of("o_total", "DECIMAL(12,2)", GeneratorSpec(
            "FormulaGenerator", {"formula": "[o_quantity] * 9.99", "places": 2}
        )),
        Field.of("o_date", "DATE", GeneratorSpec(
            "DateGenerator", {"min": "2020-01-01", "max": "2020-12-31"}
        )),
    ]))
    return schema


@pytest.fixture
def rng() -> XorShift64Star:
    return XorShift64Star(12345)


@pytest.fixture
def schema() -> Schema:
    return demo_schema()


@pytest.fixture
def engine(schema: Schema) -> GenerationEngine:
    return GenerationEngine(schema)


@pytest.fixture
def imdb_adapter():
    """A small, seeded IMDb-like source database (in memory)."""
    from repro.suites.imdb import build_imdb_database

    adapter = build_imdb_database(movies=80, people=120, seed=11)
    yield adapter
    adapter.close()
