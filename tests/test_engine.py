"""Tests for the generation engine — determinism and the O(1) cell
primitive, the properties the paper's generation strategy rests on."""

from __future__ import annotations

import pytest

from repro.engine import GenerationEngine
from repro.exceptions import GenerationError, ModelError
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from tests.conftest import demo_schema


class TestConstruction:
    def test_invalid_model_rejected(self):
        with pytest.raises(ModelError):
            GenerationEngine(Schema("empty"))

    def test_sizes_resolved(self, engine):
        assert engine.sizes == {"customer": 60, "orders": 180}

    def test_total_rows(self, engine):
        assert engine.total_rows() == 240


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = GenerationEngine(demo_schema(seed=5))
        b = GenerationEngine(demo_schema(seed=5))
        assert list(a.iter_rows("orders")) == list(b.iter_rows("orders"))

    def test_seed_change_modifies_every_random_value(self):
        # Paper §3: "changing the seed will modify every value of the
        # generated data set" (deterministic row formulas excepted).
        a = GenerationEngine(demo_schema(seed=1))
        b = GenerationEngine(demo_schema(seed=2))
        differing_names = sum(
            ra[1] != rb[1]
            for ra, rb in zip(a.iter_rows("customer"), b.iter_rows("customer"))
        )
        assert differing_names >= 55  # tiny name pool, rare collisions allowed

    def test_row_access_is_order_independent(self, engine):
        forward = [engine.generate_row("orders", r) for r in range(20)]
        backward = [engine.generate_row("orders", r) for r in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_single_cell_matches_row(self, engine):
        for row in range(15):
            full = engine.generate_row("orders", row)
            for index, name in enumerate(
                engine.bound_table("orders").column_names
            ):
                assert engine.compute_value("orders", name, row) == full[index]

    def test_iter_rows_matches_generate_row(self, engine):
        via_iter = list(engine.iter_rows("customer", 5, 15))
        via_rows = [engine.generate_row("customer", r) for r in range(5, 15)]
        assert via_iter == via_rows

    def test_columns_are_independent_streams(self):
        # Removing a column must not change the values of another column
        # (each column has its own seed branch).
        full = demo_schema(seed=8)
        reduced = demo_schema(seed=8)
        reduced.table_by_name("customer").fields.pop(1)  # drop c_name
        full_engine = GenerationEngine(full)
        reduced_engine = GenerationEngine(reduced)
        for row in range(20):
            assert full_engine.compute_value("customer", "c_balance", row) == \
                reduced_engine.compute_value("customer", "c_balance", row)


class TestComputeValue:
    def test_out_of_range_row(self, engine):
        with pytest.raises(GenerationError, match="outside table"):
            engine.compute_value("customer", "c_id", 60)
        with pytest.raises(GenerationError):
            engine.compute_value("customer", "c_id", -1)

    def test_unknown_table(self, engine):
        with pytest.raises(ModelError):
            engine.compute_value("ghost", "x", 0)

    def test_unknown_field(self, engine):
        with pytest.raises(ModelError):
            engine.compute_value("customer", "ghost", 0)

    def test_reference_resolution_through_engine(self, engine):
        customer_ids = {v[0] for v in engine.iter_rows("customer")}
        for row in range(50):
            ref = engine.compute_value("orders", "o_cust", row)
            assert ref in customer_ids


class TestPreview:
    def test_preview_shape(self, engine):
        rows = engine.preview("customer", 5)
        assert len(rows) == 5
        assert all(len(r) == 4 for r in rows)
        assert all(isinstance(cell, str) for row in rows for cell in row)

    def test_preview_shows_null_token(self, engine):
        rows = engine.preview("customer", 60)
        assert any(cell == "NULL" for row in rows for cell in row)

    def test_preview_clamps_to_table_size(self, engine):
        assert len(engine.preview("customer", 10_000)) == 60

    def test_preview_is_prefix_of_full_generation(self, engine):
        preview = engine.preview("orders", 3)
        full_first = [
            [str(v) if not hasattr(v, "isoformat") else v.isoformat() for v in row]
            for row in engine.iter_rows("orders", 0, 3)
        ]
        assert [r[0] for r in preview] == [r[0] for r in full_first]


class TestUpdates:
    def test_update_epoch_changes_values(self):
        schema = demo_schema(seed=4)
        base = GenerationEngine(schema, update=0)
        epoch = GenerationEngine(schema, update=1)
        base_names = [v[1] for v in base.iter_rows("customer", 0, 30)]
        epoch_names = [v[1] for v in epoch.iter_rows("customer", 0, 30)]
        assert base_names != epoch_names

    def test_update_epoch_is_repeatable(self):
        schema = demo_schema(seed=4)
        a = GenerationEngine(schema, update=2)
        b = GenerationEngine(schema, update=2)
        assert list(a.iter_rows("customer", 0, 10)) == list(
            b.iter_rows("customer", 0, 10)
        )


class TestRowFormulaStability:
    def test_ids_unaffected_by_seed(self):
        a = GenerationEngine(demo_schema(seed=1))
        b = GenerationEngine(demo_schema(seed=999))
        assert [v[0] for v in a.iter_rows("orders", 0, 10)] == [
            v[0] for v in b.iter_rows("orders", 0, 10)
        ]
