"""The live telemetry endpoint: /metrics, /progress, /trace, and its
consistency under concurrent obs.reset()."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.exceptions import ReproError
from repro.obs.serve import ObsServer
from repro.scheduler.progress import ProgressMonitor


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


@pytest.fixture()
def server():
    with ObsServer(port=0) as running:
        yield running


class TestEndpoints:
    def test_index_reports_state(self, server):
        obs.enable_tracing()
        status, content_type, body = _get(server.url + "/")
        assert status == 200
        index = json.loads(body)
        assert index["endpoints"] == ["/metrics", "/progress", "/trace"]
        assert index["tracing"] is True
        assert index["metrics"] is False
        assert index["generation"] == obs.generation()

    def test_metrics_prometheus_text(self, server):
        registry = obs.enable_metrics()
        registry.counter("rows_generated_total", "rows").inc(7, table="t")
        status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert 'rows_generated_total{table="t"} 7' in body

    def test_metrics_without_registry(self, server):
        status, _type, body = _get(server.url + "/metrics")
        assert status == 200
        assert "no metrics registry" in body

    def test_progress_json(self, server):
        monitor = ProgressMonitor(100, {"t": 100})
        server.attach_progress(monitor)
        monitor.add("t", 40, 1000)
        status, content_type, body = _get(server.url + "/progress")
        assert status == 200
        progress = json.loads(body)
        assert progress["rows_done"] == 40
        assert progress["rows_total"] == 100
        assert progress["tables"]["t"] == {"rows_done": 40, "rows_total": 100}
        assert 0 < progress["fraction"] < 1

    def test_progress_404_without_monitor(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server.url + "/progress")
        assert exc_info.value.code == 404

    def test_trace_recent_spans_jsonl(self, server):
        tracer = obs.enable_tracing()
        for index in range(5):
            with tracer.span("work", index=index):
                pass
        status, content_type, body = _get(server.url + "/trace?n=3")
        assert status == 200
        assert "ndjson" in content_type
        lines = [json.loads(line) for line in body.splitlines() if line]
        meta, spans = lines[0], lines[1:]
        assert meta["event"] == "meta"
        assert len(spans) == 3
        # most recent spans win
        assert [s["attrs"]["index"] for s in spans] == [2, 3, 4]

    def test_trace_404_without_tracer(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server.url + "/trace")
        assert exc_info.value.code == 404

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server.url + "/nope")
        assert exc_info.value.code == 404


class TestLifecycle:
    def test_port_before_start_raises(self):
        with pytest.raises(ReproError):
            ObsServer(port=0).port

    def test_double_start_raises(self, server):
        with pytest.raises(ReproError):
            server.start()

    def test_stop_is_idempotent(self):
        server = ObsServer(port=0).start()
        server.stop()
        server.stop()

    def test_attach_progress_after_start(self, server):
        assert server.progress is None
        monitor = ProgressMonitor(10, {"t": 10})
        server.attach_progress(monitor)
        status, _type, _body = _get(server.url + "/progress")
        assert status == 200


class TestResetConsistency:
    def test_hammer_requests_during_resets(self, server):
        """obs.reset() swapping collectors under the serve thread must
        never tear a response: every request sees a complete consistent
        body, whichever generation answered it."""
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn():
            while not stop.is_set():
                registry = obs.enable_metrics()
                registry.counter("hammer_total", "hammer").inc()
                obs.enable_tracing()
                obs.reset()

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for _ in range(50):
                for path in ("/", "/metrics"):
                    status, _type, body = _get(server.url + path)
                    assert status == 200
                    assert body.endswith("\n")
                    if path == "/":
                        json.loads(body)  # complete JSON, not torn
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not errors
