"""Tests for DBSynth catalog extraction, profiling, and sampling."""

from __future__ import annotations

import pytest

from repro.core.extraction import SchemaExtractor
from repro.core.profiling import DataProfiler, ProfileOptions, family_of
from repro.core.sampling import ColumnSampler, SampleConfig
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.exceptions import ExtractionError
from repro.model.datatypes import TypeFamily


class TestSchemaExtractor:
    def test_tables_extracted(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        assert extracted.table_names() == [
            "cast_members", "movies", "people", "ratings"
        ]

    def test_columns_in_order(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        movies = extracted.table("movies")
        assert [c.name for c in movies.columns][:3] == [
            "movie_id", "title", "production_year"
        ]

    def test_primary_keys_detected(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        movie_id = extracted.table("movies").column("movie_id")
        assert movie_id.info.primary

    def test_foreign_keys_attached(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        cast = extracted.table("cast_members")
        fk = cast.column("movie_id").foreign_key
        assert fk is not None
        assert fk.ref_table == "movies"
        assert fk.ref_column == "movie_id"

    def test_row_counts(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract(include_sizes=True)
        assert extracted.table("movies").row_count == 80

    def test_sizes_optional(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract(include_sizes=False)
        assert extracted.table("movies").row_count is None
        assert extracted.timings.sizes_seconds == 0.0

    def test_timings_recorded(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        assert extracted.timings.schema_seconds > 0
        assert extracted.timings.sizes_seconds > 0

    def test_empty_database_rejected(self):
        empty = SQLiteAdapter(":memory:")
        with pytest.raises(ExtractionError, match="no user tables"):
            SchemaExtractor(empty).extract()
        empty.close()

    def test_missing_table_lookup(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        with pytest.raises(ExtractionError):
            extracted.table("ghost")
        with pytest.raises(ExtractionError):
            extracted.table("movies").column("ghost")


class TestDataProfiler:
    @pytest.fixture
    def profiled(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        profile = DataProfiler(imdb_adapter).profile(extracted, ProfileOptions())
        return extracted, profile

    def test_null_fractions(self, profiled, imdb_adapter):
        _, profile = profiled
        plot = profile.get("movies", "plot")
        expected = imdb_adapter.null_fraction("movies", "plot")
        assert plot.null_fraction == expected
        assert profile.get("movies", "movie_id").null_fraction == 0.0

    def test_min_max(self, profiled, imdb_adapter):
        _, profile = profiled
        year = profile.get("movies", "production_year")
        lo, hi = imdb_adapter.min_max("movies", "production_year")
        assert (year.min_value, year.max_value) == (lo, hi)

    def test_distinct_counts(self, profiled):
        _, profile = profiled
        genre = profile.get("movies", "genre")
        assert 1 <= genre.distinct_count <= 10

    def test_timings_accumulated(self, profiled):
        extracted, _ = profiled
        assert extracted.timings.null_seconds > 0
        assert extracted.timings.minmax_seconds > 0

    def test_histograms_optional(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        options = ProfileOptions(histograms=True, histogram_buckets=5)
        profile = DataProfiler(imdb_adapter).profile(extracted, options)
        histogram = profile.get("movies", "genre").histogram
        assert histogram is not None
        assert len(histogram) <= 5

    def test_levels_can_be_disabled(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        options = ProfileOptions(
            null_probabilities=False, min_max=False, distinct_counts=False
        )
        profile = DataProfiler(imdb_adapter).profile(extracted, options)
        entry = profile.get("movies", "rating")
        assert entry.null_fraction is None
        assert entry.min_value is None
        assert entry.distinct_count is None

    def test_is_constant(self, imdb_adapter):
        imdb_adapter.execute_script(
            "CREATE TABLE c (x INTEGER); INSERT INTO c VALUES (5), (5), (5);"
        )
        extracted = SchemaExtractor(imdb_adapter).extract()
        profile = DataProfiler(imdb_adapter).profile(extracted)
        assert profile.get("c", "x").is_constant


class TestFamilyOf:
    def test_known(self):
        assert family_of("VARCHAR(10)") is TypeFamily.TEXT

    def test_unknown_returns_none(self):
        assert family_of("GEOMETRY") is None


class TestColumnSampler:
    def test_sampling_records_time(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        sampler = ColumnSampler(imdb_adapter)
        values = sampler.sample(extracted, "movies", "genre", SampleConfig(fraction=1.0))
        assert len(values) == 80
        assert extracted.timings.sampling_seconds > 0

    def test_min_values_fallback(self, imdb_adapter):
        # A microscopic fraction on a small table falls back to first-N.
        extracted = SchemaExtractor(imdb_adapter).extract()
        sampler = ColumnSampler(imdb_adapter)
        config = SampleConfig(fraction=1e-6, min_values=10)
        values = sampler.sample(extracted, "movies", "genre", config)
        assert len(values) >= 10

    def test_values_are_strings_without_nulls(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        values = ColumnSampler(imdb_adapter).sample(
            extracted, "movies", "plot", SampleConfig(fraction=1.0)
        )
        assert all(isinstance(v, str) for v in values)

    def test_config_validation(self):
        with pytest.raises(ExtractionError):
            SampleConfig(fraction=0.0)
        with pytest.raises(ExtractionError):
            SampleConfig(fraction=2.0)
        with pytest.raises(ExtractionError):
            SampleConfig(strategy="quantum")
        with pytest.raises(ExtractionError):
            SampleConfig(min_values=-1)
