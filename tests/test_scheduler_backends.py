"""Thread-vs-process backend tests: byte equivalence, bounded delivery,
cross-process stats, and the scheduler/output correctness fixes.

The process backend is only credible if it is invisible in the output:
every writer/sink combination must produce byte-identical data to the
threaded (and serial) scheduler, and the parent's report/metrics must
aggregate the worker processes' counters into the same shapes.
"""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.engine import GenerationEngine
from repro.exceptions import OutputError, SchedulingError
from repro.output.config import OutputConfig
from repro.output.sinks import OrderedSinkMux, Sink
from repro.output.writers import CsvWriter
from repro.scheduler import meta as meta_mod
from repro.scheduler import scheduler as scheduler_mod
from repro.scheduler.meta import ClusterReport, MetaScheduler, NodeReport
from repro.scheduler.progress import ProgressMonitor
from repro.scheduler.scheduler import Scheduler, generate
from tests.conftest import demo_schema

TABLES = ("customer", "orders")


def _memory_run(workers: int, backend: str, fmt: str = "csv",
                package_size: int = 17, **kwargs) -> OutputConfig:
    config = OutputConfig(kind="memory", format=fmt)
    generate(
        GenerationEngine(demo_schema()), config, workers=workers,
        package_size=package_size, backend=backend, **kwargs,
    )
    return config


class TestBackendEquivalence:
    @pytest.mark.parametrize("fmt", ["csv", "json", "sql"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_output_matches_serial(self, fmt, workers):
        serial = _memory_run(1, "thread", fmt, package_size=10_000)
        process = _memory_run(workers, "process", fmt)
        for table in TABLES:
            assert process.memory_output(table) == serial.memory_output(table)

    def test_xml_header_footer_once_with_processes(self, tmp_path):
        config = OutputConfig(kind="file", format="xml", directory=str(tmp_path))
        generate(GenerationEngine(demo_schema()), config, workers=3,
                 package_size=20, backend="process")
        text = (tmp_path / "orders.xml").read_text()
        assert text.count("<?xml") == 1
        assert text.count("</table>") == 1

    def test_file_output_matches_across_backends(self, tmp_path):
        thread_dir, process_dir = tmp_path / "thread", tmp_path / "process"
        for backend, directory in (("thread", thread_dir), ("process", process_dir)):
            config = OutputConfig(kind="file", format="csv",
                                  directory=str(directory))
            generate(GenerationEngine(demo_schema()), config, workers=4,
                     package_size=23, backend=backend)
        for table in TABLES:
            assert (
                (thread_dir / f"{table}.tbl").read_bytes()
                == (process_dir / f"{table}.tbl").read_bytes()
            )

    @pytest.mark.parametrize("fmt", ["csv", "sql"])
    def test_tpch_suite_identical_across_backends(self, fmt):
        """Acceptance: the TPC-H suite is byte-identical on CSV and SQL
        writers between the threaded and the process backend."""
        from repro.suites.tpch import tpch_artifacts, tpch_schema

        outputs = {}
        for backend in ("thread", "process"):
            schema = tpch_schema(0.001)
            config = OutputConfig(kind="memory", format=fmt)
            generate(GenerationEngine(schema, tpch_artifacts()), config,
                     workers=4, package_size=500, backend=backend)
            outputs[backend] = {
                table: config.memory_output(table) for table in schema.sizes()
            }
        assert outputs["thread"] == outputs["process"]
        assert any(outputs["thread"].values())

    def test_report_backend_and_rows(self):
        report = generate(GenerationEngine(demo_schema()),
                          OutputConfig(kind="null"), workers=2,
                          backend="process")
        assert report.backend == "process"
        assert report.rows == 240
        assert report.table("customer").rows == 60
        assert report.table("orders").rows == 180

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchedulingError, match="backend"):
            Scheduler(GenerationEngine(demo_schema()),
                      OutputConfig(kind="null"), backend="greenlet")

    def test_invalid_inflight_extra_rejected(self):
        with pytest.raises(SchedulingError, match="inflight_extra"):
            Scheduler(GenerationEngine(demo_schema()),
                      OutputConfig(kind="null"), inflight_extra=0)


class TestEnginePicklability:
    def test_engine_round_trips_identically(self):
        engine = GenerationEngine(demo_schema())
        clone = pickle.loads(pickle.dumps(engine))
        for table in TABLES:
            for row in (0, 7, 59):
                assert clone.generate_row(table, row) == engine.generate_row(
                    table, row
                )

    def test_reduce_preserves_update_epoch(self):
        engine = GenerationEngine(demo_schema(), update=3)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.update == 3


class TestBoundedWindow:
    def test_peak_buffered_packages_within_window(self, monkeypatch):
        """Acceptance: buffered, not-yet-flushed packages never exceed
        the configured in-flight window, on either backend."""
        created: list[OrderedSinkMux] = []

        class SpyMux(OrderedSinkMux):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(scheduler_mod, "OrderedSinkMux", SpyMux)
        for backend in ("thread", "process"):
            created.clear()
            scheduler = Scheduler(
                GenerationEngine(demo_schema()), OutputConfig(kind="null"),
                workers=4, package_size=5, backend=backend, inflight_extra=1,
            )
            scheduler.run()
            limit = scheduler.last_window.limit
            assert limit == 5
            assert created, "scheduler must route chunks through the mux"
            assert all(mux.max_pending <= limit for mux in created), backend
            assert scheduler.last_window.max_in_flight <= limit

    def test_window_exposed_after_run(self):
        scheduler = Scheduler(
            GenerationEngine(demo_schema()), OutputConfig(kind="null"),
            workers=2, package_size=11, inflight_extra=3,
        )
        scheduler.run()
        assert scheduler.last_window is not None
        assert scheduler.last_window.limit == 5
        assert scheduler.last_window.in_flight == 0  # all delivered


class TestBytesReconciliation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("fmt,header", [("xml", False), ("csv", True)])
    def test_table_bytes_sum_to_run_total(self, backend, fmt, header):
        """Header/footer bytes are attributed to their table, so the
        per-table reports reconcile with the run total exactly."""
        config = OutputConfig(kind="memory", format=fmt, include_header=header)
        report = generate(GenerationEngine(demo_schema()), config, workers=2,
                          package_size=25, backend=backend)
        assert report.bytes_written > 0
        assert sum(t.bytes_written for t in report.tables) == report.bytes_written
        for table in TABLES:
            assert report.table(table).bytes_written == len(
                config.memory_output(table)
            )


class TestCrossProcessAggregation:
    def test_progress_and_metrics_from_worker_processes(self):
        registry = obs.enable_metrics()
        try:
            progress = ProgressMonitor(240, {"customer": 60, "orders": 180})
            generate(GenerationEngine(demo_schema()), OutputConfig(kind="null"),
                     workers=2, package_size=30, backend="process",
                     progress=progress)
            snapshot = progress.snapshot()
            assert snapshot.rows_done == 240
            assert progress.table_progress()["orders"] == (180, 180)
            rows = registry.get("rows_generated_total")
            assert rows.value(table="customer") == 60
            assert rows.value(table="orders") == 180
            packages = registry.get("packages_completed_total")
            assert packages.value(table="orders") == 6  # ceil(180 / 30)
            latency = registry.get("value_latency_ns")
            assert latency.snapshot(table="orders")["count"] == 6
            assert registry.get("sink_flushes_total").total() == 8
        finally:
            obs.reset()

    def test_worker_seconds_aggregate(self):
        report = generate(GenerationEngine(demo_schema()),
                          OutputConfig(kind="null"), workers=2,
                          package_size=40, backend="process")
        assert all(t.seconds > 0 for t in report.tables)


class _ExplodingWriter(CsvWriter):
    def write_row(self, values):  # noqa: ARG002 - signature fixed by base
        raise RuntimeError("worker boom")


class _ExplodingWriterConfig(OutputConfig):
    """Fails formatting for one table — exercises worker-side errors."""

    def new_writer(self, table, columns):
        if table == "orders":
            return _ExplodingWriter(table, columns)
        return super().new_writer(table, columns)


class _FlakyOrdersSink(Sink):
    def write(self, chunk: str) -> None:
        raise OutputError("disk full")


class _FlakySinkConfig(OutputConfig):
    """Fails the sink of one table — exercises flush-side errors."""

    def new_sink(self, table):
        if table == "orders":
            return _FlakyOrdersSink()
        return super().new_sink(table)


class TestFailurePropagation:
    def test_worker_error_surfaces_from_process_backend(self):
        config = _ExplodingWriterConfig(kind="null")
        with pytest.raises(SchedulingError, match="worker boom"):
            generate(GenerationEngine(demo_schema()), config, workers=2,
                     package_size=30, backend="process")

    def test_worker_error_surfaces_from_thread_backend(self):
        config = _ExplodingWriterConfig(kind="null")
        with pytest.raises(RuntimeError, match="worker boom"):
            generate(GenerationEngine(demo_schema()), config, workers=2,
                     package_size=30)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_sink_failure_raises_original_error(self, backend, workers):
        """Regression: a failing sink used to surface as a misleading
        "duplicate work package" from whichever package came next."""
        config = _FlakySinkConfig(kind="null")
        with pytest.raises(OutputError, match="disk full"):
            generate(GenerationEngine(demo_schema()), config, workers=workers,
                     package_size=20, backend=backend)


class TestClusterMakespan:
    def test_makespan_prefers_wall_clock(self):
        nodes = [NodeReport(0, 10, 100, 1.0), NodeReport(1, 10, 100, 2.0)]
        assert ClusterReport(nodes).seconds == 2.0
        assert ClusterReport(nodes, makespan=5.0).seconds == 5.0
        # Per-node timers win when they exceed the recorded wall-clock.
        assert ClusterReport(nodes, makespan=0.5).seconds == 2.0

    def test_multiprocess_run_records_pool_wall_clock(self):
        cluster = MetaScheduler(demo_schema()).run(nodes=2, processes=True)
        assert cluster.makespan > 0
        assert cluster.seconds >= max(n.seconds for n in cluster.nodes)
        assert cluster.rows == 240

    def test_sequential_run_leaves_makespan_unset(self):
        cluster = MetaScheduler(demo_schema()).run(nodes=2, processes=False)
        assert cluster.makespan == 0.0
        assert cluster.seconds == max(n.seconds for n in cluster.nodes)

    def test_run_node_still_importable_from_meta(self):
        # Guards the module surface the fix touched.
        assert hasattr(meta_mod, "run_node")
