"""Fault tolerance: retry policy, checkpoint manifests, crash→resume.

The acceptance bar is byte-identity: for every (backend, sink) pairing,
a run that crashes partway and is resumed from its checkpoint must leave
*exactly* the bytes an uninterrupted run produces. PDGF's determinism
makes that provable — generation is a pure function of the seed
hierarchy, so resume regenerates only the missing tail and nothing can
drift.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import GenerationEngine
from repro.exceptions import OutputError, SchedulingError, TransientError
from repro.output.config import OutputConfig
from repro.output.formats import format_spec
from repro.output.sinks import MemorySink, OrderedSinkMux
from repro.resilience import (
    MANIFEST_NAME,
    CrashingSink,
    FaultInjectingOutput,
    FaultPlan,
    FlakySink,
    InjectedCrash,
    RetryPolicy,
    RunManifest,
    model_fingerprint,
)
from repro.scheduler import MetaScheduler, Scheduler, generate
from tests.conftest import demo_schema

TABLES = ("customer", "orders")


def _engine(seed: int = 42) -> GenerationEngine:
    return GenerationEngine(demo_schema(seed=seed))


def _file_config(directory, fmt: str = "csv", header: bool = True) -> OutputConfig:
    return OutputConfig(
        kind="file", format=fmt, directory=str(directory), include_header=header
    )


def _read_tables(directory, fmt: str = "csv") -> dict[str, bytes]:
    ext = format_spec(fmt).extension
    return {
        t: (directory / f"{t}{ext}").read_bytes() for t in TABLES
    }


# -- retry policy ------------------------------------------------------------


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5,
            jitter=0.0,
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(5) == pytest.approx(0.5)

    def test_jitter_is_deterministic_per_seed(self):
        one = RetryPolicy(seed=7, jitter=0.5)
        two = RetryPolicy(seed=7, jitter=0.5)
        other = RetryPolicy(seed=8, jitter=0.5)
        delays_one = [one.delay(a) for a in range(1, 4)]
        assert delays_one == [two.delay(a) for a in range(1, 4)]
        assert delays_one != [other.delay(a) for a in range(1, 4)]

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(ConnectionError())
        assert policy.is_retryable(TimeoutError())
        assert not policy.is_retryable(ValueError())
        assert not policy.is_retryable(InjectedCrash())

    def test_call_retries_then_succeeds(self):
        calls = []
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0,
                             sleep=sleeps.append)

        def flaky(value):
            calls.append(value)
            if len(calls) < 3:
                raise TransientError("transient")
            return value * 2

        assert policy.call(flaky, 21) == 42
        assert len(calls) == 3
        assert len(sleeps) == 2

    def test_call_exhausts_attempts(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0,
                             sleep=lambda _: None)
        with pytest.raises(TransientError):
            policy.call(lambda: (_ for _ in ()).throw(TransientError("no")))

    def test_call_reraises_non_retryable_immediately(self):
        attempts = []
        policy = RetryPolicy(max_attempts=5, sleep=lambda _: None)

        def broken():
            attempts.append(1)
            raise ValueError("logic error")

        with pytest.raises(ValueError):
            policy.call(broken)
        assert len(attempts) == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SchedulingError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SchedulingError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(SchedulingError):
            RetryPolicy(jitter=1.5)


# -- manifest round-trip -----------------------------------------------------


class TestManifest:
    def test_checkpoint_round_trip(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        engine = _engine()
        output = OutputConfig(kind="memory")
        fingerprint = model_fingerprint(engine, output, 25, list(TABLES))
        report = Scheduler(
            engine, output, package_size=25, checkpoint=directory
        ).run()
        manifest = RunManifest.load(directory)
        assert manifest.fingerprint == fingerprint
        assert manifest.completed
        assert set(manifest.tables) == set(TABLES)
        orders = manifest.tables["orders"]
        assert orders.done
        prefix = orders.durable_prefix()
        assert len(prefix) == 8  # 180 rows / 25-row packages
        assert sum(r.rows for r in prefix) == 180
        assert report.resumed_packages == 0

    def test_manifest_tolerates_torn_final_line(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        Scheduler(
            _engine(), OutputConfig(kind="memory"), package_size=25,
            checkpoint=directory,
        ).run()
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "package", "table": "orde')  # torn write
        manifest = RunManifest.load(directory)  # must not raise
        assert manifest.tables["orders"].done

    def test_load_missing_manifest_refused(self, tmp_path):
        with pytest.raises(SchedulingError, match="nothing to resume"):
            RunManifest.load(str(tmp_path / "absent"))

    def test_fingerprint_sensitivity(self):
        output = OutputConfig(kind="memory")
        base = model_fingerprint(_engine(), output, 25, list(TABLES))
        assert base == model_fingerprint(_engine(), output, 25, list(TABLES))
        assert base != model_fingerprint(_engine(seed=43), output, 25, list(TABLES))
        assert base != model_fingerprint(_engine(), output, 50, list(TABLES))
        tabbed = OutputConfig(kind="memory", delimiter="\t")
        assert base != model_fingerprint(_engine(), tabbed, 25, list(TABLES))
        # Worker count / backend never affect bytes — not fingerprinted.

    def test_resume_with_changed_model_refused(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        out_dir = tmp_path / "out"
        Scheduler(
            _engine(), _file_config(out_dir), package_size=25,
            checkpoint=directory,
        ).run()
        with pytest.raises(SchedulingError, match="refusing to resume"):
            Scheduler(
                _engine(seed=99), _file_config(out_dir), package_size=25,
                resume_from=directory,
            ).run()

    def test_resume_with_changed_package_size_refused(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        out_dir = tmp_path / "out"
        Scheduler(
            _engine(), _file_config(out_dir), package_size=25,
            checkpoint=directory,
        ).run()
        with pytest.raises(SchedulingError, match="refusing to resume"):
            Scheduler(
                _engine(), _file_config(out_dir), package_size=30,
                resume_from=directory,
            ).run()


# -- crash → resume byte-identity --------------------------------------------


def _crash_then_resume(tmp_path, *, fmt, backend, workers, crash_after):
    """Crash a run partway, resume it, return (reference, resumed) bytes."""
    ref_dir = tmp_path / "ref"
    Scheduler(
        _engine(), _file_config(ref_dir, fmt), package_size=25,
    ).run()

    crash_dir = tmp_path / "crash"
    ckpt = str(tmp_path / "ckpt")
    faulty = FaultInjectingOutput(
        _file_config(crash_dir, fmt), crash_after_writes=crash_after
    )
    with pytest.raises(InjectedCrash):
        Scheduler(
            _engine(), faulty, package_size=25, workers=workers,
            backend=backend, checkpoint=ckpt,
        ).run()

    report = Scheduler(
        _engine(), _file_config(crash_dir, fmt), package_size=25,
        workers=workers, backend=backend, checkpoint=ckpt, resume_from=ckpt,
    ).run()
    return _read_tables(ref_dir, fmt), _read_tables(crash_dir, fmt), report


class TestCrashResume:
    @pytest.mark.parametrize("fmt", ["csv", "json", "sql"])
    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("process", 2)])
    def test_resumed_run_is_byte_identical(self, tmp_path, fmt, backend, workers):
        reference, resumed, report = _crash_then_resume(
            tmp_path, fmt=fmt, backend=backend, workers=workers, crash_after=4
        )
        assert resumed == reference
        assert report.resumed_packages > 0
        # The report still describes the complete data set.
        assert report.rows == 240

    def test_resume_skips_durable_packages(self, tmp_path):
        _, _, report = _crash_then_resume(
            tmp_path, fmt="csv", backend="thread", workers=1, crash_after=4
        )
        # crash_after counts every sink write: 2 table headers at setup,
        # then 2 customer packages, before the 5th write raises.
        assert report.resumed_packages == 2

    def test_worker_kill_resume_process_backend(self, tmp_path):
        """A hard worker kill (os._exit) crashes the run without a retry
        policy; resume completes it byte-identically."""
        ref_dir = tmp_path / "ref"
        Scheduler(_engine(), _file_config(ref_dir), package_size=25).run()

        crash_dir = tmp_path / "crash"
        ckpt = str(tmp_path / "ckpt")
        plan = FaultPlan(
            kill_worker_at=("orders", 2), latch_dir=str(tmp_path / "latch")
        )
        with pytest.raises(SchedulingError, match="worker process died"):
            Scheduler(
                _engine(), _file_config(crash_dir), package_size=25,
                workers=2, backend="process", checkpoint=ckpt, faults=plan,
            ).run()

        Scheduler(
            _engine(), _file_config(crash_dir), package_size=25,
            workers=2, backend="process", checkpoint=ckpt, resume_from=ckpt,
        ).run()
        assert _read_tables(crash_dir) == _read_tables(ref_dir)

    def test_resume_after_completed_run_is_noop(self, tmp_path):
        out_dir = tmp_path / "out"
        ckpt = str(tmp_path / "ckpt")
        first = Scheduler(
            _engine(), _file_config(out_dir), package_size=25, checkpoint=ckpt,
        ).run()
        before = _read_tables(out_dir)
        again = Scheduler(
            _engine(), _file_config(out_dir), package_size=25,
            checkpoint=ckpt, resume_from=ckpt,
        ).run()
        assert _read_tables(out_dir) == before
        assert again.rows == first.rows
        assert again.bytes_written == first.bytes_written
        # Every package was durable; nothing regenerated.
        assert again.resumed_packages == 3 + 8  # 60/25 + 180/25 packages

    def test_checkpoint_under_four_workers_resumed_with_one(self, tmp_path):
        """Worker count and backend are scheduling choices, not model
        inputs: a process/4-worker checkpoint resumes on thread/1."""
        ref_dir = tmp_path / "ref"
        Scheduler(_engine(), _file_config(ref_dir), package_size=25).run()

        crash_dir = tmp_path / "crash"
        ckpt = str(tmp_path / "ckpt")
        faulty = FaultInjectingOutput(
            _file_config(crash_dir), crash_after_writes=5
        )
        with pytest.raises(InjectedCrash):
            Scheduler(
                _engine(), faulty, package_size=25, workers=4,
                backend="process", checkpoint=ckpt,
            ).run()
        Scheduler(
            _engine(), _file_config(crash_dir), package_size=25,
            workers=1, backend="thread", checkpoint=ckpt, resume_from=ckpt,
        ).run()
        assert _read_tables(crash_dir) == _read_tables(ref_dir)

    def test_truncated_output_file_refused(self, tmp_path):
        crash_dir = tmp_path / "crash"
        ckpt = str(tmp_path / "ckpt")
        faulty = FaultInjectingOutput(
            _file_config(crash_dir), crash_after_writes=6
        )
        with pytest.raises(InjectedCrash):
            Scheduler(
                _engine(), faulty, package_size=25, checkpoint=ckpt,
            ).run()
        # Data loss after the crash: the file no longer backs the journal.
        victim = crash_dir / "customer.tbl"
        victim.write_bytes(victim.read_bytes()[:10])
        with pytest.raises(OutputError, match="journal outlived the data"):
            Scheduler(
                _engine(), _file_config(crash_dir), package_size=25,
                resume_from=ckpt,
            ).run()

    def test_sigint_mid_run_syncs_sinks_and_marks_manifest(self, tmp_path):
        out_dir = tmp_path / "out"
        ckpt = str(tmp_path / "ckpt")
        faulty = FaultInjectingOutput(
            _file_config(out_dir), crash_after_writes=4,
            crash_exception=KeyboardInterrupt,
        )
        with pytest.raises(KeyboardInterrupt):
            Scheduler(
                _engine(), faulty, package_size=25, checkpoint=ckpt,
            ).run()
        # The journaled packages survived the interrupt on disk...
        manifest = RunManifest.load(ckpt)
        durable = sum(
            r.bytes for s in manifest.tables.values()
            for r in s.durable_prefix()
        )
        on_disk = sum(
            (out_dir / f"{t}.tbl").stat().st_size
            for t in TABLES if (out_dir / f"{t}.tbl").exists()
        )
        headers = sum(s.header_bytes or 0 for s in manifest.tables.values())
        assert on_disk >= durable + headers
        # ...and the manifest records the interruption.
        lines = [
            json.loads(line)
            for line in open(os.path.join(ckpt, MANIFEST_NAME), encoding="utf-8")
        ]
        assert lines[-1]["type"] == "interrupted"
        assert lines[-1]["reason"] == "KeyboardInterrupt"
        # The run is still resumable afterwards.
        Scheduler(
            _engine(), _file_config(out_dir), package_size=25,
            resume_from=ckpt,
        ).run()
        ref_dir = tmp_path / "ref"
        Scheduler(_engine(), _file_config(ref_dir), package_size=25).run()
        assert _read_tables(out_dir) == _read_tables(ref_dir)

    def test_gzip_resume_refused(self, tmp_path):
        config = OutputConfig(kind="gzip", directory=str(tmp_path))
        with pytest.raises(OutputError, match="cannot resume gzip"):
            config.new_sink("customer", resume_at=100)


# -- retries during a live run -----------------------------------------------


class TestLiveRetries:
    def test_flaky_sink_recovered_by_retry_policy(self, tmp_path):
        ref_dir = tmp_path / "ref"
        Scheduler(_engine(), _file_config(ref_dir), package_size=25).run()

        flaky_dir = tmp_path / "flaky"
        faulty = FaultInjectingOutput(_file_config(flaky_dir), fail_every=3)
        report = Scheduler(
            _engine(), faulty, package_size=25,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0,
                              sleep=lambda _: None),
        ).run()
        assert report.retries > 0
        assert _read_tables(flaky_dir) == _read_tables(ref_dir)

    def test_flaky_sink_without_policy_fails(self, tmp_path):
        faulty = FaultInjectingOutput(
            _file_config(tmp_path / "flaky"), fail_every=3
        )
        with pytest.raises(TransientError):
            Scheduler(_engine(), faulty, package_size=25).run()

    def test_worker_kill_recovered_in_single_run(self, tmp_path):
        ref_dir = tmp_path / "ref"
        Scheduler(_engine(), _file_config(ref_dir), package_size=25).run()

        kill_dir = tmp_path / "kill"
        plan = FaultPlan(
            kill_worker_at=("orders", 3), latch_dir=str(tmp_path / "latch")
        )
        report = Scheduler(
            _engine(), _file_config(kill_dir), package_size=25,
            workers=2, backend="process", faults=plan,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
        ).run()
        assert report.worker_restarts == 1
        assert report.requeued_packages >= 1
        assert _read_tables(kill_dir) == _read_tables(ref_dir)


# -- mux resilience hooks ----------------------------------------------------


class TestMuxHooks:
    def test_first_sequence_offsets_ordering(self):
        sink = MemorySink()
        mux = OrderedSinkMux(sink, "t", first_sequence=2)
        mux.submit(3, "b")
        assert sink.getvalue() == ""
        mux.submit(2, "a")
        assert sink.getvalue() == "ab"
        mux.finish()

    def test_below_first_sequence_is_duplicate(self):
        mux = OrderedSinkMux(MemorySink(), "t", first_sequence=2)
        with pytest.raises(OutputError, match="duplicate"):
            mux.submit(1, "x")

    def test_on_flush_sees_ordered_chunks(self):
        seen = []
        mux = OrderedSinkMux(
            MemorySink(), "t", on_flush=lambda seq, chunk: seen.append(seq)
        )
        mux.submit(1, "b")
        mux.submit(0, "a")
        mux.submit(2, "c")
        mux.finish()
        assert seen == [0, 1, 2]

    def test_retry_counts_recovered_writes(self):
        sink = FlakySink(MemorySink(), fail_every=2)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0,
                             sleep=lambda _: None)
        mux = OrderedSinkMux(sink, "t", retry=policy)
        for sequence in range(4):
            mux.submit(sequence, f"c{sequence}")
        mux.finish()
        # fail_every counts calls, retries included: calls 2, 4, and 6
        # fail (each the first attempt of chunks c1, c2, c3).
        assert mux.retries == 3
        assert sink.inner.getvalue() == "c0c1c2c3"


# -- fault harness -----------------------------------------------------------


class TestFaultHarness:
    def test_crashing_sink_counts_across_tables(self, tmp_path):
        counter = [0]
        one = CrashingSink(MemorySink(), 3, counter)
        two = CrashingSink(MemorySink(), 3, counter)
        one.write("a")
        two.write("b")
        one.write("c")
        with pytest.raises(InjectedCrash):
            two.write("d")

    def test_fault_plan_fires_once_per_latch(self, tmp_path):
        plan = FaultPlan(
            kill_worker_at=("t", 1), latch_dir=str(tmp_path / "latch")
        )
        assert plan.should_kill_worker("t", 1) is True
        assert plan.should_kill_worker("t", 1) is False  # latched
        assert plan.should_kill_worker("t", 2) is False  # wrong package

    def test_fault_output_is_picklable(self, tmp_path):
        import pickle

        faulty = FaultInjectingOutput(
            _file_config(tmp_path), crash_after_writes=3, fail_every=2
        )
        clone = pickle.loads(pickle.dumps(faulty))
        assert clone._crash_after == 3
        assert clone._fail_every == 2
        assert clone.format == "csv"

    def test_injected_crash_escapes_except_exception(self):
        with pytest.raises(InjectedCrash):
            try:
                raise InjectedCrash("boom")
            except Exception:  # pragma: no cover - must not catch
                pytest.fail("InjectedCrash must not be an Exception")


# -- generate() / meta scheduler threading -----------------------------------


class TestPlumbing:
    def test_generate_accepts_resilience_kwargs(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        out = OutputConfig(kind="memory")
        report = generate(
            GenerationEngine(demo_schema()), out, package_size=25,
            checkpoint=ckpt,
        )
        assert report.rows == 240
        assert RunManifest.load(ckpt).completed

    def test_meta_scheduler_per_node_checkpoints(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        meta = MetaScheduler(
            demo_schema(), output=OutputConfig(kind="null"),
            package_size=25, checkpoint=ckpt,
        )
        meta.run(nodes=2, processes=False)
        for node in range(2):
            manifest = RunManifest.load(os.path.join(ckpt, f"node{node}"))
            assert manifest.completed
