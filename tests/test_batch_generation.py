"""Batch fast-path equivalence: generate_batch == per-row generate.

The batch contract (PR: batch-first generator API) requires byte-exact
agreement between ``BoundTable.generate_rows`` and repeated
``generate_row`` calls for every registered generator, every suite, and
every writer/backend combination. These tests enforce it property-style:
a kitchen-sink schema covers every registered generator (a coverage
assertion fails when a new generator is registered without being added
here), and the benchmark suites are compared writer-for-writer on both
scheduler backends.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import GenerationEngine
from repro.exceptions import GenerationError
from repro.generators.base import ArtifactStore
from repro.generators.registry import _REGISTRY, known_generators
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from repro.output.config import OutputConfig
from repro.scheduler import Scheduler
from repro.scheduler.meta import node_ranges
from repro.suites.bigbench import bigbench_engine
from repro.suites.ssb import ssb_engine
from repro.suites.tpch import tpch_engine  # also registers TpchPsSuppkeyGenerator
from repro.text.markov import train_chain

WIDE_ROWS = 96


def kitchen_sink_schema() -> tuple[Schema, ArtifactStore]:
    """One table using every registered generator (plus a ref target)."""
    schema = Schema("sink", seed=20150604)
    schema.add_table(Table("supplier", "10", [
        Field.of("s_id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
        Field.of("s_city", "VARCHAR(30)", GeneratorSpec("CityGenerator")),
        Field.of("s_country", "VARCHAR(30)", GeneratorSpec("CountryGenerator")),
    ]))
    schema.add_table(Table("wide", str(WIDE_ROWS), [
        Field.of("w_id", "BIGINT", GeneratorSpec(
            "IdGenerator", {"base": 10, "step": 3}
        ), primary=True),
        Field.of("w_rowf", "BIGINT", GeneratorSpec(
            "RowFormulaGenerator", {"formula": "row // 4 + 1"}
        )),
        Field.of("w_static", "CHAR(1)", GeneratorSpec(
            "StaticValueGenerator", {"constant": "X"}
        )),
        Field.of("w_long", "BIGINT", GeneratorSpec(
            "LongGenerator", {"min": 5, "max": 5000}
        )),
        Field.of("w_zipf", "INTEGER", GeneratorSpec(
            "IntGenerator",
            {"min": 1, "max": 100, "distribution": "zipf", "exponent": 0.8},
        )),
        Field.of("w_double", "DOUBLE", GeneratorSpec(
            "DoubleGenerator", {"min": -5.0, "max": 5.0, "places": 3}
        )),
        Field.of("w_norm", "DOUBLE", GeneratorSpec(
            "DoubleGenerator",
            {"distribution": "normal", "mean": 0.0, "stddev": 2.0},
        )),
        Field.of("w_bool", "BOOLEAN", GeneratorSpec(
            "BooleanGenerator", {"true_probability": 0.3}
        )),
        Field.of("w_date", "DATE", GeneratorSpec(
            "DateGenerator", {"min": "1995-01-01", "max": "1996-12-31"}
        )),
        Field.of("w_ts", "TIMESTAMP", GeneratorSpec(
            "TimestampGenerator", {"min": "1995-01-01", "max": "1995-12-31"}
        )),
        Field.of("w_hist", "INTEGER", GeneratorSpec(
            "HistogramGenerator",
            {"bounds": [0, 10, 100], "weights": [3, 1], "as_int": True},
        )),
        Field.of("w_seq", "VARCHAR(10)", GeneratorSpec(
            "SequentialGenerator", {"separator": "-"},
            [
                GeneratorSpec("IntGenerator", {"min": 1, "max": 9}),
                GeneratorSpec("IntGenerator", {"min": 1, "max": 9}),
            ],
        )),
        Field.of("w_prob", "VARCHAR(10)", GeneratorSpec(
            "ProbabilityGenerator", {"weights": [1.0, 3.0]},
            [
                GeneratorSpec("StaticValueGenerator", {"constant": "rare"}),
                GeneratorSpec("IntGenerator", {"min": 0, "max": 99}),
            ],
        )),
        Field.of("w_switch", "VARCHAR(10)", GeneratorSpec(
            "SwitchGenerator", {"field": "w_bool", "cases": ["True"]},
            [
                GeneratorSpec("StaticValueGenerator", {"constant": "yes"}),
                GeneratorSpec("PatternStringGenerator", {"pattern": "n#"}),
            ],
        )),
        Field.of("w_name", "VARCHAR(40)", GeneratorSpec("PersonNameGenerator")),
        Field.of("w_company", "VARCHAR(60)", GeneratorSpec("CompanyNameGenerator")),
        Field.of("w_addr", "VARCHAR(80)", GeneratorSpec("AddressGenerator")),
        Field.of("w_email", "VARCHAR(60)", GeneratorSpec("EmailGenerator")),
        Field.of("w_phone", "VARCHAR(20)", GeneratorSpec("PhoneGenerator")),
        Field.of("w_url", "VARCHAR(80)", GeneratorSpec("UrlGenerator")),
        Field.of("w_text", "VARCHAR(120)", GeneratorSpec(
            "TextGenerator", {"min": 2, "max": 6}
        )),
        Field.of("w_null", "VARCHAR(120)", GeneratorSpec(
            "NullGenerator", {"probability": 0.3},
            [GeneratorSpec("TextGenerator", {"min": 1, "max": 4})],
        )),
        Field.of("w_dict", "VARCHAR(10)", GeneratorSpec(
            "DictListGenerator",
            {"values": ["red", "green", "blue"], "weights": [5, 3, 2]},
        )),
        Field.of("w_dict_sfx", "VARCHAR(20)", GeneratorSpec(
            "DictListGenerator",
            {"values": ["alpha", "beta"], "unique_suffix": True, "domain": 50},
        )),
        Field.of("w_dict_byrow", "VARCHAR(10)", GeneratorSpec(
            "DictListGenerator", {"values": ["n0", "n1", "n2"], "by_row": True}
        )),
        Field.of("w_rand", "VARCHAR(12)", GeneratorSpec(
            "RandomStringGenerator", {"min": 3, "max": 9, "alphabet": "alnum"}
        )),
        Field.of("w_pat", "VARCHAR(12)", GeneratorSpec(
            "PatternStringGenerator", {"pattern": "##-@@-^^x"}
        )),
        Field.of("w_form", "DOUBLE", GeneratorSpec(
            "FormulaGenerator", {"formula": "[w_long] * 2 + 1", "places": 1}
        )),
        Field.of("w_markov", "VARCHAR(120)", GeneratorSpec(
            "MarkovChainGenerator", {"model": "markov:test", "min": 2, "max": 5}
        )),
        Field.of("w_ref", "BIGINT", GeneratorSpec(
            "DefaultReferenceGenerator", {"table": "supplier", "field": "s_id"}
        )),
        Field.of("w_ref_zipf", "VARCHAR(30)", GeneratorSpec(
            "DefaultReferenceGenerator",
            {"table": "supplier", "field": "s_city", "distribution": "zipf"},
        )),
        Field.of("w_suppkey", "BIGINT", GeneratorSpec("TpchPsSuppkeyGenerator")),
    ]))
    artifacts = ArtifactStore()
    artifacts.put("markov:test", train_chain([
        "the quick brown fox jumps over the lazy dog",
        "pack my box with five dozen liquor jugs",
        "how vexingly quick daft zebras jump",
    ]))
    return schema, artifacts


@pytest.fixture(scope="module")
def sink_engine() -> GenerationEngine:
    schema, artifacts = kitchen_sink_schema()
    return GenerationEngine(schema, artifacts)


def _spec_names(spec: GeneratorSpec) -> set[str]:
    names = {spec.name}
    for child in spec.children:
        names |= _spec_names(child)
    return names


def _rowwise(engine: GenerationEngine, table: str, start: int, stop: int) -> list:
    bound = engine.bound_table(table)
    ctx = engine.new_context(table)
    return [bound.generate_row(row, ctx) for row in range(start, stop)]


class TestRegistryCoverage:
    def test_every_registered_generator_is_exercised(self, sink_engine):
        covered: set[str] = set()
        for table in sink_engine.schema.tables:
            for field in table.fields:
                covered |= _spec_names(field.generator)
        # Other test modules register throwaway generators; only the
        # library's own (repro.*) generators owe batch-path coverage.
        library = {
            name
            for name in known_generators()
            if _REGISTRY[name].__module__.startswith("repro.")
        }
        missing = library - covered
        assert not missing, (
            f"generators without batch-equivalence coverage: {sorted(missing)}; "
            "add them to kitchen_sink_schema"
        )


class TestKitchenSinkEquivalence:
    def test_full_table_batch_equals_row(self, sink_engine):
        for table in ("supplier", "wide"):
            size = sink_engine.sizes[table]
            assert sink_engine.generate_rows(table) == _rowwise(
                sink_engine, table, 0, size
            )

    def test_single_row_batches(self, sink_engine):
        for start in (0, 1, WIDE_ROWS // 2, WIDE_ROWS - 1):
            assert sink_engine.generate_rows("wide", start, start + 1) == _rowwise(
                sink_engine, "wide", start, start + 1
            )

    def test_batch_spanning_package_edges(self, sink_engine):
        # A block straddling typical package boundaries must agree with
        # the row path and with the concatenation of smaller blocks.
        start, stop = 29, 67
        whole = sink_engine.generate_rows("wide", start, stop)
        assert whole == _rowwise(sink_engine, "wide", start, stop)
        split = sink_engine.generate_rows("wide", start, 48) + sink_engine.generate_rows(
            "wide", 48, stop
        )
        assert whole == split

    def test_batch_crossing_reference_partition(self, sink_engine):
        # Meta-scheduler node shares partition each table; a batch that
        # crosses the node boundary must still agree cell-for-cell.
        ranges = node_ranges(sink_engine.sizes, 2, 0)
        boundary = ranges["wide"][1]
        assert 0 < boundary < WIDE_ROWS
        lo, hi = boundary - 5, min(boundary + 5, WIDE_ROWS)
        assert sink_engine.generate_rows("wide", lo, hi) == _rowwise(
            sink_engine, "wide", lo, hi
        )

    def test_iter_rows_block_size_invariant(self, sink_engine):
        reference = sink_engine.generate_rows("wide")
        for block_size in (1, 7, 64, 1024):
            assert list(sink_engine.iter_rows("wide", block_size=block_size)) == reference

    def test_wrong_batch_length_raises(self, sink_engine):
        bound = sink_engine.bound_table("supplier")
        generator = bound.generators[0]
        cls = type(generator)
        original_block = cls.generate_block
        original_batch = cls.generate_batch
        try:
            # Silence the typed kernel so the engine takes the batch
            # fallback, then hand it a wrong-length list.
            cls.generate_block = lambda self, ctx, start, count: None
            cls.generate_batch = lambda self, ctx, start, count: []
            with pytest.raises(GenerationError, match="returned 0 values"):
                sink_engine.generate_rows("supplier", 0, 4)
        finally:
            cls.generate_block = original_block
            cls.generate_batch = original_batch

    def test_wrong_block_length_raises(self, sink_engine):
        from repro import columnar

        bound = sink_engine.bound_table("supplier")
        generator = bound.generators[0]
        cls = type(generator)
        original_block = cls.generate_block
        try:
            cls.generate_block = lambda self, ctx, start, count: (
                columnar.ObjectColumn([1])
            )
            with pytest.raises(GenerationError, match="returned 1 values"):
                sink_engine.generate_rows("supplier", 0, 4)
        finally:
            cls.generate_block = original_block


class TestEnginePickleMidRun:
    def test_pickle_round_trips_batch_state(self, sink_engine):
        schema, artifacts = kitchen_sink_schema()
        engine = GenerationEngine(schema, artifacts)
        # Drive the batch path far enough to populate every lazy cache
        # (date memos, dictionary int/value caches, numpy CDFs) ...
        first = engine.generate_rows("wide", 0, 40)
        # ... then pickle mid-run; caches must be rebuilt, not shipped.
        restored = pickle.loads(pickle.dumps(engine))
        assert restored.generate_rows("wide", 0, 40) == first
        assert restored.generate_rows("wide", 40, WIDE_ROWS) == engine.generate_rows(
            "wide", 40, WIDE_ROWS
        )
        assert restored.generate_rows("supplier") == engine.generate_rows("supplier")


SUITES = {
    "tpch": lambda: tpch_engine(scale_factor=0.001),
    "ssb": lambda: ssb_engine(scale_factor=0.001),
    "bigbench": lambda: bigbench_engine(scale_factor=0.001),
}

_suite_cache: dict[str, tuple[GenerationEngine, dict[str, list]]] = {}


def _suite_rows(name: str) -> tuple[GenerationEngine, dict[str, list]]:
    """Engine plus per-row reference rows for every table (cached)."""
    if name not in _suite_cache:
        engine = SUITES[name]()
        rows = {
            table.name: _rowwise(engine, table.name, 0, engine.sizes[table.name])
            for table in engine.schema.tables
        }
        _suite_cache[name] = (engine, rows)
    return _suite_cache[name]


class TestSuiteByteIdentity:
    @pytest.mark.parametrize("suite", sorted(SUITES))
    @pytest.mark.parametrize("fmt", ["csv", "json", "sql"])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_batch_output_matches_rowwise(self, suite, fmt, backend):
        engine, reference_rows = _suite_rows(suite)
        config = OutputConfig(kind="memory", format=fmt)
        scheduler = Scheduler(
            engine, config, workers=2, package_size=512, backend=backend
        )
        scheduler.run()
        for table, rows in reference_rows.items():
            writer = config.new_writer(
                table, engine.bound_table(table).column_names
            )
            expected = (
                writer.header()
                + "".join(writer.write_row(row) for row in rows)
                + writer.footer()
            )
            assert config.memory_output(table) == expected, (
                f"{suite}.{table} [{fmt}/{backend}] batch output diverged"
            )

    def test_xml_writer_blocks_match_rowwise(self):
        engine, reference_rows = _suite_rows("tpch")
        config = OutputConfig(kind="memory", format="xml")
        Scheduler(engine, config, workers=2, package_size=512).run(["region", "nation"])
        for table in ("region", "nation"):
            writer = config.new_writer(
                table, engine.bound_table(table).column_names
            )
            expected = (
                writer.header()
                + "".join(writer.write_row(row) for row in reference_rows[table])
                + writer.footer()
            )
            assert config.memory_output(table) == expected
