"""Tests for text tokenization and column classification."""

from __future__ import annotations

from repro.text.tokenizer import classify_values, is_multi_word, sentences, words


class TestWords:
    def test_simple_split(self):
        assert words("the quick fox") == ["the", "quick", "fox"]

    def test_punctuation_kept_attached(self):
        assert words("wake up, sleep.") == ["wake", "up,", "sleep."]

    def test_empty(self):
        assert words("") == []
        assert words("   ") == []

    def test_multiple_spaces(self):
        assert words("a   b\tc\nd") == ["a", "b", "c", "d"]


class TestSentences:
    def test_split_on_terminators(self):
        text = "First one. Second one! Third one? Tail"
        assert sentences(text) == ["First one", "Second one", "Third one", "Tail"]

    def test_empty(self):
        assert sentences("") == []

    def test_single_sentence(self):
        assert sentences("just one sentence") == ["just one sentence"]


class TestIsMultiWord:
    def test_single(self):
        assert not is_multi_word("AUTOMOBILE")

    def test_multi(self):
        assert is_multi_word("UNITED STATES")

    def test_empty(self):
        assert not is_multi_word("")


class TestClassifyValues:
    def test_categorical_column(self):
        assert classify_values(["RED", "GREEN", "BLUE"] * 20) == "dictionary"

    def test_free_text_column(self):
        texts = ["the quick brown fox jumps", "over the lazy dog today"] * 20
        assert classify_values(texts) == "text"

    def test_mostly_single_with_rare_multi(self):
        # Country-style columns (a few multi-word entries) stay dictionaries.
        values = ["GERMANY"] * 85 + ["UNITED STATES"] * 15
        assert classify_values(values) == "dictionary"

    def test_threshold_is_configurable(self):
        values = ["GERMANY"] * 85 + ["UNITED STATES"] * 15
        assert classify_values(values, multi_word_threshold=0.1) == "text"

    def test_empty_sample_defaults_to_dictionary(self):
        assert classify_values([]) == "dictionary"
        assert classify_values(["", ""]) == "dictionary"
