"""Tests for weighted dictionaries."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.text.dictionary import DictionaryEntry, WeightedDictionary


class TestConstruction:
    def test_from_values_counts_frequencies(self):
        d = WeightedDictionary.from_values(["a", "a", "a", "b"])
        entries = {e.value: e.weight for e in d.entries}
        assert entries == {"a": 0.75, "b": 0.25}

    def test_from_values_orders_by_frequency(self):
        d = WeightedDictionary.from_values(["rare", "common", "common"])
        assert d.values() == ["common", "rare"]

    def test_from_values_sample_order_independent(self):
        a = WeightedDictionary.from_values(["x", "y", "x", "z"])
        b = WeightedDictionary.from_values(["z", "x", "y", "x"])
        assert a.dumps() == b.dumps()

    def test_from_values_skips_none(self):
        d = WeightedDictionary.from_values(["a", None, "b"])
        assert set(d.values()) == {"a", "b"}

    def test_from_values_empty_raises(self):
        with pytest.raises(ModelError):
            WeightedDictionary.from_values([])

    def test_uniform(self):
        d = WeightedDictionary.uniform(["x", "y"])
        assert all(e.weight == 0.5 for e in d.entries)

    def test_uniform_deduplicates(self):
        d = WeightedDictionary.uniform(["x", "y", "x"])
        assert len(d) == 2

    def test_empty_entries_raise(self):
        with pytest.raises(ModelError):
            WeightedDictionary([])


class TestSampling:
    def test_only_dictionary_values(self, rng):
        d = WeightedDictionary.from_values(["a", "b", "c"] * 5)
        for _ in range(500):
            assert d.sample(rng) in ("a", "b", "c")

    def test_weights_respected(self, rng):
        d = WeightedDictionary.from_values(["hot"] * 90 + ["cold"] * 10)
        n = 20_000
        hot = sum(1 for _ in range(n) if d.sample(rng) == "hot")
        assert abs(hot / n - 0.9) < 0.02

    def test_pick_positional_with_wraparound(self):
        d = WeightedDictionary.uniform(["a", "b", "c"])
        assert d.pick(0) == "a"
        assert d.pick(4) == "b"

    def test_contains(self):
        d = WeightedDictionary.uniform(["a"])
        assert "a" in d and "b" not in d


class TestSerialization:
    def test_round_trip(self):
        d = WeightedDictionary.from_values(["alpha", "beta", "alpha"])
        restored = WeightedDictionary.loads(d.dumps())
        assert restored.dumps() == d.dumps()

    def test_round_trip_preserves_order(self):
        d = WeightedDictionary.from_values(list("zyxabc") * 3 + ["z"])
        assert WeightedDictionary.loads(d.dumps()).values() == d.values()

    def test_file_round_trip(self, tmp_path):
        d = WeightedDictionary.uniform(["one", "two"])
        path = str(tmp_path / "dict.jsonl")
        d.save(path)
        assert WeightedDictionary.load(path).values() == ["one", "two"]

    def test_bad_line_raises(self):
        with pytest.raises(ModelError, match="bad dictionary line"):
            WeightedDictionary.loads('{"v": "a", "w": 1.0}\nnot json\n')

    def test_missing_key_raises(self):
        with pytest.raises(ModelError):
            WeightedDictionary.loads('{"value": "a"}\n')

    def test_blank_lines_ignored(self):
        d = WeightedDictionary.loads('\n{"v": "a", "w": 1.0}\n\n')
        assert d.values() == ["a"]

    def test_unicode_values(self):
        d = WeightedDictionary.from_values(["café", "naïve", "café"])
        assert WeightedDictionary.loads(d.dumps()).values() == d.values()


def test_entry_is_frozen():
    entry = DictionaryEntry("a", 0.5)
    with pytest.raises(AttributeError):
        entry.value = "b"  # type: ignore[misc]
