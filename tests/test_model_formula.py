"""Tests for the safe formula evaluator."""

from __future__ import annotations

import pytest

from repro.exceptions import FormulaError
from repro.model.formula import (
    CompiledFormula,
    compile_formula,
    evaluate,
    evaluate_int,
    find_references,
)


class TestFindReferences:
    def test_single(self):
        assert find_references("6000000 * ${SF}") == ["SF"]

    def test_multiple_ordered_unique(self):
        assert find_references("${a} + ${b} * ${a}") == ["a", "b"]

    def test_dotted_names(self):
        assert find_references("${lineitem.size}") == ["lineitem.size"]

    def test_none(self):
        assert find_references("1 + 2") == []


class TestEvaluate:
    def test_plain_arithmetic(self):
        assert evaluate("1 + 2 * 3") == 7

    def test_property_reference(self):
        assert evaluate("6000000 * ${SF}", {"SF": 2}) == 12_000_000

    def test_dotted_property(self):
        assert evaluate("${a.b} + 1", {"a.b": 4}) == 5

    def test_division(self):
        assert evaluate("7 / 2") == 3.5

    def test_floor_division_and_modulo(self):
        assert evaluate("7 // 2") == 3
        assert evaluate("7 % 3") == 1

    def test_power_and_unary(self):
        assert evaluate("-2 ** 2") == -4
        assert evaluate("+5") == 5

    def test_functions(self):
        assert evaluate("max(1, 5, 3)") == 5
        assert evaluate("min(2, ${x})", {"x": 1}) == 1
        assert evaluate("ceil(1.2)") == 2
        assert evaluate("floor(1.8)") == 1
        assert evaluate("abs(-3)") == 3
        assert evaluate("sqrt(16)") == 4
        assert evaluate("round(2.5)") == 2  # banker's rounding, like Python

    def test_bare_identifier_environment(self):
        assert evaluate("row // 4 + 1", {"row": 11}) == 3

    def test_undefined_property(self):
        with pytest.raises(FormulaError, match="undefined property"):
            evaluate("${missing}")

    def test_unknown_bare_name(self):
        with pytest.raises(FormulaError):
            evaluate("unknown_name + 1")

    def test_rejects_attribute_access(self):
        with pytest.raises(FormulaError):
            evaluate("(1).__class__")

    def test_rejects_arbitrary_calls(self):
        with pytest.raises(FormulaError):
            evaluate("__import__('os')")

    def test_rejects_string_constants(self):
        with pytest.raises(FormulaError):
            evaluate("'abc'")

    def test_rejects_comparison(self):
        with pytest.raises(FormulaError):
            evaluate("1 < 2")

    def test_rejects_boolean_constant(self):
        with pytest.raises(FormulaError):
            evaluate("True")

    def test_rejects_keyword_arguments(self):
        with pytest.raises(FormulaError):
            evaluate("round(2.5, ndigits=1)")

    def test_syntax_error(self):
        with pytest.raises(FormulaError, match="cannot parse"):
            evaluate("1 +")

    def test_division_by_zero(self):
        with pytest.raises(FormulaError):
            evaluate("1 / 0")

    def test_rejects_lambdas(self):
        with pytest.raises(FormulaError):
            evaluate("(lambda: 1)()")


class TestEvaluateInt:
    def test_rounds(self):
        assert evaluate_int("2.6") == 3
        assert evaluate_int("2.4") == 2

    def test_scale_expression(self):
        assert evaluate_int("0.1 * ${SF} * 100", {"SF": 1}) == 10


class TestCompiledFormula:
    def test_repeated_evaluation(self):
        formula = CompiledFormula("${a} * 2")
        assert formula({"a": 3}) == 6
        assert formula({"a": 5}) == 10

    def test_references_exposed(self):
        assert CompiledFormula("${x} + ${y}").references == ["x", "y"]

    def test_compile_cache_returns_same_object(self):
        a = compile_formula("1 + 2 + ${unique_cache_probe}")
        b = compile_formula("1 + 2 + ${unique_cache_probe}")
        assert a is b

    def test_missing_reference_at_call_time(self):
        formula = CompiledFormula("${q} + 1")
        with pytest.raises(FormulaError, match="undefined property"):
            formula({})

    def test_validation_happens_at_compile_time(self):
        with pytest.raises(FormulaError):
            CompiledFormula("[1, 2]")

    def test_matches_python_semantics(self):
        cases = [
            ("2 + 3 * 4", 14),
            ("(2 + 3) * 4", 20),
            ("10 % 4", 2),
            ("2 ** 10", 1024),
            ("17 // 5", 3),
        ]
        for expression, expected in cases:
            assert evaluate(expression) == expected
