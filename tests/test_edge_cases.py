"""Edge cases and stress tests across the stack."""

from __future__ import annotations

import pytest

from repro.engine import GenerationEngine
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from repro.output.config import OutputConfig
from repro.scheduler import Scheduler, generate
from repro.update import UpdateBlackBox


def _schema_with_sizes(*sizes: int) -> Schema:
    schema = Schema("edges", seed=3)
    for index, size in enumerate(sizes):
        schema.add_table(Table(f"t{index}", str(size), [
            Field.of("id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
            Field.of("v", "INTEGER", GeneratorSpec(
                "IntGenerator", {"min": 0, "max": 9}
            )),
        ]))
    return schema


class TestEmptyAndTinyTables:
    def test_zero_row_table_generates_nothing(self):
        engine = GenerationEngine(_schema_with_sizes(0, 10))
        assert list(engine.iter_rows("t0")) == []
        report = generate(engine, OutputConfig(kind="memory"))
        assert report.rows == 10

    def test_single_row_table(self):
        engine = GenerationEngine(_schema_with_sizes(1))
        rows = list(engine.iter_rows("t0"))
        assert rows == [[1, rows[0][1]]]

    def test_preview_of_empty_table(self):
        engine = GenerationEngine(_schema_with_sizes(0))
        assert engine.preview("t0", 10) == []

    def test_empty_schema_output_files_created(self, tmp_path):
        engine = GenerationEngine(_schema_with_sizes(0))
        config = OutputConfig(kind="file", directory=str(tmp_path))
        generate(engine, config)
        assert (tmp_path / "t0.tbl").read_text() == ""


class TestManyColumns:
    def test_fifty_column_table(self):
        schema = Schema("wide", seed=9)
        fields = [
            Field.of(f"c{i}", "INTEGER", GeneratorSpec(
                "IntGenerator", {"min": 0, "max": 100}
            ))
            for i in range(50)
        ]
        schema.add_table(Table("wide", "20", fields))
        engine = GenerationEngine(schema)
        rows = list(engine.iter_rows("wide"))
        assert len(rows) == 20
        assert all(len(row) == 50 for row in rows)
        # Columns are independent streams: no two identical columns.
        columns = list(zip(*rows))
        assert len(set(columns)) == 50


class TestSchedulerStress:
    def test_package_size_one(self):
        engine = GenerationEngine(_schema_with_sizes(64))
        serial = OutputConfig(kind="memory")
        generate(GenerationEngine(_schema_with_sizes(64)), serial)
        tiny = OutputConfig(kind="memory")
        Scheduler(engine, tiny, workers=8, package_size=1).run()
        assert tiny.memory_output("t0") == serial.memory_output("t0")

    def test_more_workers_than_packages(self):
        engine = GenerationEngine(_schema_with_sizes(5))
        report = generate(engine, OutputConfig(kind="null"), workers=16,
                          package_size=100)
        assert report.rows == 5

    def test_many_tables(self):
        schema = _schema_with_sizes(*([7] * 25))
        engine = GenerationEngine(schema)
        report = generate(engine, OutputConfig(kind="null"), workers=4,
                          package_size=3)
        assert report.rows == 175

    def test_sqlite_sink_under_concurrency(self, tmp_path):
        from repro.db.ddl import create_schema_sql
        from repro.db.sqlite_adapter import SQLiteAdapter

        schema = _schema_with_sizes(200)
        path = str(tmp_path / "conc.db")
        with SQLiteAdapter(path) as adapter:
            adapter.execute_script(create_schema_sql(schema, "sqlite"))
        config = OutputConfig(kind="sqlite", format="sql", database=path)
        engine = GenerationEngine(schema)
        generate(engine, config, workers=8, package_size=10)
        with SQLiteAdapter(path) as adapter:
            assert adapter.row_count("t0") == 200


class TestExtremeScaleFactors:
    def test_fractional_sf_floors_to_at_least_configured(self):
        from repro.suites.tpch import tpch_schema

        schema = tpch_schema(0.0000001)
        # max(1, ...) keeps every scalable table non-empty.
        for table, size in schema.sizes().items():
            assert size >= 1, table

    def test_large_sf_scales_linearly(self):
        from repro.suites.tpch import tpch_schema

        schema = tpch_schema(30)
        assert schema.table_size("lineitem") == 180_000_000
        assert schema.table_size("region") == 5

    def test_random_access_into_huge_virtual_table(self):
        # Seed-addressed generation: row 10^9 of a virtual 6B-row table
        # is computable without generating anything else.
        from repro.suites.tpch import tpch_artifacts, tpch_schema

        engine = GenerationEngine(tpch_schema(1000), tpch_artifacts())
        row = engine.generate_row("lineitem", 1_000_000_000)
        assert row[0] == 250_000_001  # l_orderkey = row // 4 + 1
        again = engine.generate_row("lineitem", 1_000_000_000)
        assert row == again


class TestUpdateEdgeCases:
    def test_zero_fractions_yield_empty_epochs(self):
        schema = _schema_with_sizes(50)
        blackbox = UpdateBlackBox(
            schema, insert_fraction=0.0, update_fraction=0.0, delete_fraction=0.0
        )
        assert list(blackbox.epoch_events("t0", 1)) == []

    def test_update_fraction_larger_than_table(self):
        schema = _schema_with_sizes(10)
        blackbox = UpdateBlackBox(schema, update_fraction=5.0)
        updates = [e for e in blackbox.epoch_events("t0", 1) if e.kind == "update"]
        assert len(updates) == 10  # clamped to the table size

    def test_epoch_on_empty_table(self):
        schema = _schema_with_sizes(0)
        blackbox = UpdateBlackBox(schema)
        assert list(blackbox.epoch_events("t0", 1)) == []


class TestUnicodeData:
    def test_unicode_through_all_formats(self, tmp_path):
        schema = Schema("uni", seed=2)
        schema.add_table(Table("t", "5", [
            Field.of("s", "TEXT", GeneratorSpec(
                "DictListGenerator", {"values": ["café", "naïve", "日本語", "emoji🎉"]}
            )),
        ]))
        for fmt in ("csv", "json", "xml"):
            config = OutputConfig(kind="file", format=fmt,
                                  directory=str(tmp_path / fmt))
            generate(GenerationEngine(schema), config)
            text = open(config.table_path("t"), encoding="utf-8").read()
            assert any(token in text for token in ("café", "naïve", "日本語", "emoji🎉"))
