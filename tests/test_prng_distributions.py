"""Tests for repeatable distribution sampling."""

from __future__ import annotations

import math

import pytest

from repro.prng.distributions import (
    Categorical,
    Zipf,
    exponential,
    normal,
    pareto,
    uniform,
    uniform_int,
)
from repro.prng.xorshift import XorShift64Star


class TestUniform:
    def test_within_range(self, rng):
        for _ in range(1000):
            assert 2.0 <= uniform(rng, 2.0, 5.0) < 5.0

    def test_rejects_empty_range(self, rng):
        with pytest.raises(ValueError):
            uniform(rng, 5.0, 2.0)

    def test_mean(self, rng):
        n = 20_000
        mean = sum(uniform(rng, 0.0, 10.0) for _ in range(n)) / n
        assert abs(mean - 5.0) < 0.1


class TestUniformInt:
    def test_inclusive_bounds(self, rng):
        seen = {uniform_int(rng, 1, 3) for _ in range(300)}
        assert seen == {1, 2, 3}

    def test_single_point_range(self, rng):
        assert uniform_int(rng, 7, 7) == 7

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            uniform_int(rng, 3, 2)


class TestNormal:
    def test_moments(self, rng):
        n = 30_000
        samples = [normal(rng, 10.0, 2.0) for _ in range(n)]
        mean = sum(samples) / n
        var = sum((s - mean) ** 2 for s in samples) / n
        assert abs(mean - 10.0) < 0.1
        assert abs(math.sqrt(var) - 2.0) < 0.1

    def test_rejects_negative_stddev(self, rng):
        with pytest.raises(ValueError):
            normal(rng, 0.0, -1.0)

    def test_zero_stddev_is_constant(self, rng):
        assert normal(rng, 3.0, 0.0) == pytest.approx(3.0)


class TestExponential:
    def test_positive(self, rng):
        for _ in range(1000):
            assert exponential(rng, 2.0) >= 0.0

    def test_mean_is_inverse_rate(self, rng):
        n = 30_000
        mean = sum(exponential(rng, 4.0) for _ in range(n)) / n
        assert abs(mean - 0.25) < 0.01

    def test_rejects_nonpositive_rate(self, rng):
        with pytest.raises(ValueError):
            exponential(rng, 0.0)


class TestZipf:
    def test_rank_one_most_frequent(self, rng):
        zipf = Zipf(100, 1.0)
        counts = [0] * 101
        for _ in range(20_000):
            counts[zipf.sample(rng)] += 1
        assert counts[1] == max(counts)
        assert counts[1] > counts[10] > 0

    def test_in_range(self, rng):
        zipf = Zipf(10, 1.5)
        assert all(1 <= zipf.sample(rng) <= 10 for _ in range(1000))

    def test_s_zero_is_uniform(self, rng):
        zipf = Zipf(4, 0.0)
        counts = [0] * 5
        n = 40_000
        for _ in range(n):
            counts[zipf.sample(rng)] += 1
        for k in range(1, 5):
            assert abs(counts[k] / n - 0.25) < 0.02

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Zipf(0)
        with pytest.raises(ValueError):
            Zipf(10, -1.0)


class TestPareto:
    def test_at_least_scale(self, rng):
        assert all(pareto(rng, 2.0, 3.0) >= 3.0 for _ in range(1000))

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError):
            pareto(rng, 0.0)


class TestCategorical:
    def test_respects_weights(self, rng):
        cat = Categorical(["a", "b"], [0.9, 0.1])
        n = 20_000
        hits = sum(1 for _ in range(n) if cat.sample(rng) == "a")
        assert abs(hits / n - 0.9) < 0.02

    def test_uniform_default(self, rng):
        cat = Categorical(["x", "y", "z", "w"])
        seen = {cat.sample(rng) for _ in range(500)}
        assert seen == {"x", "y", "z", "w"}

    def test_zero_weight_never_sampled(self, rng):
        cat = Categorical(["keep", "drop"], [1.0, 0.0])
        assert all(cat.sample(rng) == "keep" for _ in range(2000))

    def test_sample_index(self, rng):
        cat = Categorical(["only"])
        assert cat.sample_index(rng) == 0

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            Categorical([])

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            Categorical(["a"], [0.5, 0.5])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            Categorical(["a", "b"], [1.0, -0.5])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            Categorical(["a", "b"], [0.0, 0.0])

    def test_deterministic_for_same_stream(self):
        cat = Categorical(list("abcdef"))
        a = XorShift64Star(5)
        b = XorShift64Star(5)
        assert [cat.sample(a) for _ in range(30)] == [cat.sample(b) for _ in range(30)]
