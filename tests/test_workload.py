"""Tests for query-workload synthesis (repro.workload)."""

from __future__ import annotations

import io

import pytest

from repro import obs
from repro.core.loader import DataLoader
from repro.core.queries import Aggregate, ParameterSpec, Query, QueryTemplate
from repro.core.translator import SchemaTranslator
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.engine import GenerationEngine
from repro.exceptions import WorkloadError
from repro.update.blackbox import UpdateBlackBox
from repro.workload import (
    ARRIVAL_PROCESSES,
    ArrivalSpec,
    CdcInterleave,
    ScheduledQuery,
    WeightedTemplate,
    WorkloadReplayer,
    WorkloadSpec,
    WorkloadStream,
    auto_spec,
    key_column,
    read_jsonl,
)
from tests.conftest import demo_schema

COUNT_CUSTOMERS = QueryTemplate(
    "count_customers",
    "SELECT COUNT(*) FROM customer WHERE c_balance <= :cap",
    [ParameterSpec("cap", "customer", "c_balance", "numeric")],
)
COUNT_ORDERS = QueryTemplate(
    "count_orders",
    "SELECT COUNT(*) FROM orders WHERE o_quantity < :q",
    [ParameterSpec("q", "orders", "o_quantity", "numeric")],
)


def demo_spec(**kwargs) -> WorkloadSpec:
    defaults = dict(name="demo", count=40, repetition=0.0)
    defaults.update(kwargs)
    return WorkloadSpec(
        templates=[
            WeightedTemplate(COUNT_CUSTOMERS, 1.0),
            WeightedTemplate(COUNT_ORDERS, 3.0),
        ],
        **defaults,
    )


class TestSpec:
    def test_validate_accepts_default(self):
        demo_spec().validate()

    @pytest.mark.parametrize("bad", [
        dict(count=-1),
        dict(repetition=1.5),
        dict(pool_size=-2),
        dict(arrival=ArrivalSpec(process="lunar")),
        dict(arrival=ArrivalSpec(rate=0.0)),
        dict(arrival=ArrivalSpec(process="diurnal", amplitude=1.0)),
    ])
    def test_validate_rejects(self, bad):
        with pytest.raises(WorkloadError):
            demo_spec(**bad).validate()

    def test_rejects_duplicate_template_names(self):
        spec = WorkloadSpec("dup", [
            WeightedTemplate(COUNT_ORDERS), WeightedTemplate(COUNT_ORDERS),
        ])
        with pytest.raises(WorkloadError):
            spec.validate()

    def test_uniform_weights(self):
        spec = WorkloadSpec.uniform("u", [COUNT_CUSTOMERS, COUNT_ORDERS])
        assert [w.weight for w in spec.templates] == [1.0, 1.0]

    def test_effective_pool_size(self):
        assert demo_spec(count=40, repetition=0.5).effective_pool_size() == 10
        assert demo_spec(pool_size=7).effective_pool_size() == 7
        assert demo_spec(count=1, repetition=1.0).effective_pool_size() == 1

    def test_arrival_processes_exported(self):
        assert ARRIVAL_PROCESSES == ("steady", "poisson", "diurnal")

    def test_auto_spec_covers_every_table(self):
        spec = auto_spec(demo_schema())
        spec.validate()
        assert {w.template.name for w in spec.templates} == {
            "scan_customer", "scan_orders",
        }
        # Non-id columns become parameters; SQL stays instantiable.
        for weighted in spec.templates:
            assert "COUNT(*)" in weighted.template.sql


class TestStream:
    def test_same_seed_same_bytes(self):
        dumps = []
        for _ in range(2):
            stream = WorkloadStream(demo_schema(), demo_spec())
            buffer = io.StringIO()
            assert stream.dump_jsonl(buffer) == 40
            dumps.append(buffer.getvalue())
        assert dumps[0] == dumps[1]

    def test_different_seed_differs(self):
        a = WorkloadStream(demo_schema(seed=1), demo_spec()).events()
        b = WorkloadStream(demo_schema(seed=2), demo_spec()).events()
        assert [e.sql for e in a] != [e.sql for e in b]

    def test_slices_compose_to_full_stream(self):
        stream = WorkloadStream(demo_schema(), demo_spec())
        whole = stream.events()
        sliced = stream.events(0, 13) + stream.events(13, 29) + stream.events(29)
        assert whole == sliced

    def test_bad_slice_rejected(self):
        stream = WorkloadStream(demo_schema(), demo_spec())
        with pytest.raises(WorkloadError):
            stream.events(5, 2)

    def test_weighted_mix_leans_to_heavy_template(self):
        events = WorkloadStream(demo_schema(), demo_spec(count=200)).events()
        orders = sum(1 for e in events if e.template == "count_orders")
        assert orders > len(events) / 2

    def test_zero_repetition_is_all_unique(self):
        stream = WorkloadStream(demo_schema(), demo_spec(repetition=0.0))
        pool = stream.spec.effective_pool_size()
        indices = [e.index for e in stream.events()]
        assert len(set(indices)) == len(indices)
        assert all(index >= pool for index in indices)

    def test_high_repetition_reuses_pool(self):
        stream = WorkloadStream(
            demo_schema(), demo_spec(count=60, repetition=0.9, pool_size=3)
        )
        events = stream.events()
        pooled = [e for e in events if e.index < 3]
        assert len(pooled) > len(events) / 2
        # Repeated instances render identical SQL within a template.
        rendered = {}
        for event in pooled:
            key = (event.template, event.index)
            assert rendered.setdefault(key, event.sql) == event.sql

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_arrivals_deterministic_and_monotonic(self, process):
        spec = demo_spec(arrival=ArrivalSpec(process=process, rate=50.0))
        stream = WorkloadStream(demo_schema(), spec)
        first, second = stream.arrivals(), stream.arrivals()
        assert first == second
        assert first[0] == 0.0
        assert all(b >= a for a, b in zip(first, first[1:]))

    def test_steady_arrivals_evenly_spaced(self):
        spec = demo_spec(arrival=ArrivalSpec(process="steady", rate=4.0))
        timestamps = WorkloadStream(demo_schema(), spec).arrivals(5)
        assert timestamps == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_poisson_arrivals_irregular(self):
        spec = demo_spec(arrival=ArrivalSpec(process="poisson", rate=4.0))
        timestamps = WorkloadStream(demo_schema(), spec).arrivals(20)
        gaps = {round(b - a, 6) for a, b in zip(timestamps, timestamps[1:])}
        assert len(gaps) > 1

    def test_jsonl_round_trip(self):
        stream = WorkloadStream(demo_schema(), demo_spec())
        buffer = io.StringIO()
        stream.dump_jsonl(buffer)
        buffer.seek(0)
        assert read_jsonl(buffer) == stream.events()

    def test_read_jsonl_skips_blank_lines(self):
        event = ScheduledQuery(0.5, "t", 3, "SELECT 1")
        assert read_jsonl(["", event.to_json(), "  "]) == [event]

    def test_bad_line_raises(self):
        with pytest.raises(WorkloadError):
            ScheduledQuery.from_json('{"ts": "late"}')


@pytest.fixture(scope="module")
def demo_database():
    schema = demo_schema()
    adapter = SQLiteAdapter(":memory:")
    SchemaTranslator().apply(schema, adapter)
    DataLoader(adapter).load(GenerationEngine(schema))
    yield schema, adapter
    adapter.close()


class TestReplay:
    def test_replay_runs_and_reports(self, demo_database):
        schema, adapter = demo_database
        stream = WorkloadStream(schema, demo_spec(count=12))
        replayer = WorkloadReplayer(schema, adapter)
        report = replayer.replay(stream.events())
        assert len(report.executions) == 12
        assert report.failed == 0
        assert report.ok
        assert set(report.per_template) <= {"count_customers", "count_orders"}
        stats = next(iter(report.per_template.values()))
        assert stats.count == len(stats.seconds)
        assert stats.quantile(0.5) >= 0.0
        assert any("replayed 12 queries" in line for line in report.summary_lines())

    def test_failed_query_counted_not_raised(self, demo_database):
        schema, adapter = demo_database
        replayer = WorkloadReplayer(schema, adapter)
        report = replayer.replay([ScheduledQuery(0.0, "bad", 0, "SELECT * FROM no")])
        assert report.failed == 1
        assert not report.ok
        assert report.per_template["bad"].errors == 1

    def test_check_grading_gates_ok(self, demo_database):
        schema, adapter = demo_database
        replayer = WorkloadReplayer(schema, adapter)
        good = ("count", Query("customer", [Aggregate("count")]))
        report = replayer.replay([], checks=[good])
        assert report.checks is not None
        assert report.prediction_failures == 0
        assert report.ok

        with SQLiteAdapter(":memory:") as sparse:
            SchemaTranslator().apply(schema, sparse)
            sparse.insert_rows("customer", ["c_id"], [(1,)])
            lying = WorkloadReplayer(schema, sparse).replay([], checks=[good])
        assert lying.prediction_failures == 1
        assert not lying.ok

    def test_latency_histogram_labeled_by_template(self, demo_database):
        schema, adapter = demo_database
        stream = WorkloadStream(schema, demo_spec(count=8))
        registry = obs.enable_metrics()
        try:
            WorkloadReplayer(schema, adapter).replay(stream.events())
        finally:
            obs.disable_metrics()
        text = obs.render_prometheus(registry)
        assert 'workload_query_seconds_count{template="count_orders"}' in text
        assert 'workload_query_seconds_bucket{le="+Inf",template="count_orders"}' in text
        assert 'workload_queries_total{status="ok",template="count_orders"}' in text

    def test_no_metrics_without_registry(self, demo_database):
        schema, adapter = demo_database
        assert obs.active_metrics() is None
        stream = WorkloadStream(schema, demo_spec(count=2))
        report = WorkloadReplayer(schema, adapter).replay(stream.events())
        assert report.ok  # silently skips observation, still reports

    def test_pacing_honors_timestamps(self, demo_database):
        schema, adapter = demo_database
        waits: list[float] = []
        clock_value = [0.0]

        def clock() -> float:
            return clock_value[0]

        def sleep(seconds: float) -> None:
            waits.append(round(seconds, 6))
            clock_value[0] += seconds

        events = [
            ScheduledQuery(0.0, "t", 0, "SELECT 1"),
            ScheduledQuery(2.0, "t", 1, "SELECT 1"),
            ScheduledQuery(6.0, "t", 2, "SELECT 1"),
        ]
        replayer = WorkloadReplayer(
            schema, adapter, max_speedup=2.0, clock=clock, sleep=sleep
        )
        report = replayer.replay(events)
        assert report.failed == 0
        # Workload time compressed 2x: arrivals at wall 0, 1, 3 seconds.
        assert waits == [1.0, 2.0]

    def test_unpaced_replay_never_sleeps(self, demo_database):
        schema, adapter = demo_database

        def explode(_seconds: float) -> None:  # pragma: no cover
            raise AssertionError("sleep called in unpaced replay")

        events = [ScheduledQuery(9999.0, "t", 0, "SELECT 1")]
        replayer = WorkloadReplayer(schema, adapter, max_speedup=0.0, sleep=explode)
        assert replayer.replay(events).failed == 0


class TestCdcInterleave:
    def test_key_column_detection(self):
        schema = demo_schema()
        assert key_column(schema, "customer") == "c_id"
        assert key_column(schema, "orders") == "o_id"

    def test_epochs_applied_at_boundaries(self):
        schema = demo_schema()
        with SQLiteAdapter(":memory:") as adapter:
            SchemaTranslator().apply(schema, adapter)
            DataLoader(adapter).load(GenerationEngine(schema))
            before = adapter.row_count("customer")
            blackbox = UpdateBlackBox(
                schema, insert_fraction=0.1, update_fraction=0.1,
                delete_fraction=0.05,
            )
            stream = WorkloadStream(schema, demo_spec(count=10))
            replayer = WorkloadReplayer(schema, adapter)
            report = replayer.replay(
                stream.events(),
                cdc=CdcInterleave(blackbox, epochs=2, tables=("customer",)),
            )
            after = adapter.row_count("customer")
        assert report.failed == 0
        assert [(e, t) for e, t, _ in report.cdc_applied] == [
            (1, "customer"), (2, "customer"),
        ]
        # Epoch 1 runs against the pristine base: affected == emitted.
        assert report.cdc_applied[0][2] == {"insert": 6, "update": 6, "delete": 3}
        # Counts are affected rows, so they reconcile with the database
        # even when a later epoch touches an already-deleted row.
        inserted = sum(c["insert"] for _, _, c in report.cdc_applied)
        deleted = sum(c["delete"] for _, _, c in report.cdc_applied)
        assert inserted == 12
        assert after == before + inserted - deleted

    def test_explicit_keyless_table_rejected(self):
        schema = demo_schema()
        cdc = CdcInterleave(UpdateBlackBox(schema), tables=("customer",))
        assert cdc.resolved_tables(schema) == [("customer", "c_id")]
        schema.table_by_name("customer").field_by_name("c_id").primary = False
        with pytest.raises(WorkloadError):
            CdcInterleave(UpdateBlackBox(schema), tables=("customer",)
                          ).resolved_tables(schema)


class TestWorkloadCli:
    @pytest.fixture(scope="class")
    def tpch_db(self, tmp_path_factory):
        from repro.suites.tpch import tpch_artifacts, tpch_schema

        schema = tpch_schema(0.001)
        artifacts = tpch_artifacts()
        path = str(tmp_path_factory.mktemp("wl") / "tpch.db")
        with SQLiteAdapter(path) as adapter:
            SchemaTranslator().apply(schema, adapter)
            DataLoader(adapter).load(GenerationEngine(schema, artifacts))
        return path

    def run(self, argv):
        from repro.cli.main import main

        return main(argv)

    def test_dump_is_byte_reproducible(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            code = self.run([
                "workload", "--suite", "tpch", "--sf", "0.001",
                "--queries", "10", "--dump", str(path),
            ])
            assert code == 0
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        assert first.count(b"\n") == 10

    def test_replay_dumped_stream(self, tpch_db, tmp_path, capsys):
        stream_path = tmp_path / "stream.jsonl"
        code = self.run([
            "workload", "--suite", "tpch", "--sf", "0.001",
            "--queries", "6", "--dump", str(stream_path),
        ])
        assert code == 0
        code = self.run([
            "workload", "--suite", "tpch", "--sf", "0.001",
            "--queries", "6", "--replay", "--stream", str(stream_path),
            "--database", tpch_db, "--max-speedup", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed 6 queries" in out
        assert "predictions ok" in out

    def test_replay_with_cdc(self, tpch_db, tmp_path, capsys):
        import shutil

        mutated = str(tmp_path / "mutated.db")
        shutil.copy(tpch_db, mutated)
        code = self.run([
            "workload", "--suite", "tpch", "--sf", "0.001",
            "--queries", "4", "--replay", "--database", mutated,
            "--max-speedup", "0", "--cdc-epochs", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cdc epoch 1" in out
