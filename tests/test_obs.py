"""Unit tests for the observability subsystem: tracing spans, the
metrics registry, and the exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.exceptions import ReproError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Stopwatch, Tracer


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


class TestTracer:
    def test_span_records_timing_and_thread(self):
        tracer = Tracer()
        with tracer.span("work", table="t") as active:
            pass
        assert active.seconds >= 0
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.attrs == {"table": "t"}
        assert record.thread_id == threading.get_ident()
        assert record.duration >= 0
        assert record.parent_id is None

    def test_nesting_parents_inner_spans(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        records = {r.name: r for r in tracer.spans()}
        assert records["inner"].parent_id == outer.span_id
        assert records["outer"].parent_id is None
        assert inner.span_id != outer.span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.spans()}
        assert by_name["a"].parent_id == outer.span_id
        assert by_name["b"].parent_id == outer.span_id

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            done = threading.Event()

            def worker():
                with tracer.span("package", parent_id=run.span_id):
                    pass
                done.set()

            threading.Thread(target=worker).start()
            assert done.wait(5)
        by_name = {r.name: r for r in tracer.spans()}
        assert by_name["package"].parent_id == run.span_id

    def test_exception_is_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record.attrs["error"] == "ValueError"

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("s") as active:
            active.set(rows=10, bytes=200)
        (record,) = tracer.spans()
        assert record.attrs == {"rows": 10, "bytes": 200}

    def test_per_thread_stacks_do_not_interfere(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def worker(name: str):
            barrier.wait()
            for _ in range(50):
                with tracer.span(name):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.spans()
        assert len(records) == 200
        assert all(r.parent_id is None for r in records)


class TestModuleState:
    def test_disabled_span_is_shared_noop(self):
        assert obs.active_tracer() is None
        span = obs.span("anything", attr=1)
        assert span is NOOP_SPAN
        with span as entered:
            entered.set(ignored=True)
        assert span.seconds == 0.0

    def test_enable_records_disable_stops(self):
        tracer = obs.enable_tracing()
        with obs.span("seen"):
            pass
        obs.disable_tracing()
        with obs.span("unseen"):
            pass
        assert [r.name for r in tracer.spans()] == ["seen"]

    def test_timed_measures_even_when_disabled(self):
        with obs.timed("phase") as phase:
            sum(range(1000))
        assert isinstance(phase, Stopwatch)
        assert phase.seconds > 0

    def test_timed_records_span_when_enabled(self):
        tracer = obs.enable_tracing()
        with obs.timed("phase") as phase:
            pass
        assert phase.seconds >= 0
        assert [r.name for r in tracer.spans()] == ["phase"]


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value() == 6

    def test_labels_are_independent(self):
        counter = Counter("c")
        counter.inc(2, table="a")
        counter.inc(3, table="b")
        assert counter.value(table="a") == 2
        assert counter.value(table="b") == 3
        assert counter.total() == 5

    def test_bound_counter_fast_path(self):
        counter = Counter("c")
        bound = counter.labels(table="t")
        for _ in range(10):
            bound.inc()
        assert counter.value(table="t") == 10

    def test_negative_increment_rejected(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1)

    def test_concurrent_increments_lose_nothing(self):
        counter = Counter("c")
        bound = counter.labels(table="t")

        def worker():
            for _ in range(1000):
                bound.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(table="t") == 8000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.add(2)
        assert gauge.value() == 7

    def test_set_max_keeps_watermark(self):
        gauge = Gauge("g")
        gauge.set_max(3)
        gauge.set_max(1)
        gauge.set_max(9)
        assert gauge.value() == 9


class TestHistogram:
    def test_observation_buckets(self):
        histogram = Histogram("h", buckets=[10, 100, 1000])
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 5555
        # cumulative: <=10, <=100, <=1000, +Inf
        assert snap["buckets"] == [1, 2, 3, 4]

    def test_boundary_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=[10, 100])
        histogram.observe(10)
        assert histogram.snapshot()["buckets"] == [1, 1, 1]

    def test_labels(self):
        histogram = Histogram("h", buckets=[1])
        histogram.labels(table="a").observe(0.5)
        histogram.observe(2.0, table="b")
        assert histogram.snapshot(table="a")["count"] == 1
        assert histogram.snapshot(table="b")["buckets"] == [0, 1]

    def test_empty_bounds_rejected(self):
        with pytest.raises(ReproError):
            Histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_metrics_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.gauge("alpha")
        assert [m.name for m in registry.metrics()] == ["alpha", "zeta"]

    def test_process_global_enable_disable(self):
        assert obs.active_metrics() is None
        registry = obs.enable_metrics()
        assert obs.active_metrics() is registry
        obs.disable_metrics()
        assert obs.active_metrics() is None


class TestExporters:
    def test_trace_jsonl_round_trip(self, tmp_path):
        tracer = obs.enable_tracing()
        with obs.span("outer", table="t"):
            with obs.span("inner"):
                pass
        path = str(tmp_path / "trace.jsonl")
        written = obs.write_trace_jsonl(tracer, path)
        assert written == 2
        records = obs.read_trace_jsonl(path)
        assert [r.name for r in records] == ["inner", "outer"]
        by_name = {r.name: r for r in records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].attrs == {"table": "t"}

    def test_trace_jsonl_lines_are_json(self, tmp_path):
        tracer = obs.enable_tracing()
        with obs.span("s"):
            pass
        path = str(tmp_path / "trace.jsonl")
        obs.write_trace_jsonl(tracer, path)
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert lines[0]["event"] == "meta"
        assert lines[1]["event"] == "span"

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            obs.read_trace_jsonl(str(path))

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("rows_total", "rows").inc(7, table="t")
        registry.gauge("depth").set(3)
        registry.histogram("lat", buckets=[1.0, 2.0]).observe(1.5)
        text = obs.render_prometheus(registry)
        assert "# TYPE rows_total counter" in text
        assert 'rows_total{table="t"} 7' in text
        assert "# HELP rows_total rows" in text
        assert "depth 3" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert "lat_sum 1.5" in text

    def test_prometheus_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=[10.0, 100.0])
        histogram.observe(5)
        histogram.observe(50)
        text = obs.render_prometheus(registry)
        assert 'h_bucket{le="10.0"} 1' in text
        assert 'h_bucket{le="100.0"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text

    def test_aggregate_spans_orders_by_total(self):
        tracer = obs.enable_tracing()
        for _ in range(3):
            with obs.span("fast"):
                pass
        aggregates = obs.aggregate_spans(tracer.spans())
        assert aggregates[0].name == "fast"
        assert aggregates[0].count == 3
        assert aggregates[0].mean_seconds >= 0

    def test_summary_lines(self):
        registry = obs.enable_metrics()
        tracer = obs.enable_tracing()
        registry.counter("rows_generated_total").inc(42, table="t")
        with obs.span("scheduler.run"):
            pass
        lines = obs.summary_lines(registry, tracer)
        text = "\n".join(lines)
        assert "rows_generated_total" in text
        assert "scheduler.run" in text

    def test_write_metrics_text(self, tmp_path):
        registry = obs.enable_metrics()
        registry.counter("c").inc()
        path = str(tmp_path / "metrics.prom")
        obs.write_metrics_text(registry, path)
        assert "c 1" in open(path, encoding="utf-8").read()


class TestHistogramQuantiles:
    def _histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=[1.0, 5.0, 10.0])
        for value in (0.5, 2.0, 3.0, 4.0, 8.0):
            histogram.observe(value)
        return histogram

    def test_interpolated_quantiles(self):
        histogram = self._histogram()
        # rank 2.5 of 5 falls in the (1, 5] bucket (counts 1,3,1)
        assert histogram.quantile(0.5) == pytest.approx(3.0)
        assert histogram.quantile(0.95) == pytest.approx(8.75)

    def test_empty_histogram_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("h", buckets=[1.0]).quantile(0.5) == 0.0

    def test_inf_bucket_clamps_to_last_bound(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=[1.0, 2.0])
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_invalid_q_rejected(self):
        histogram = self._histogram()
        for q in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ReproError):
                histogram.quantile(q)

    def test_prometheus_renders_quantile_lines(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=[1.0, 5.0, 10.0])
        histogram.observe(2.0, table="t")
        text = obs.render_prometheus(registry)
        for suffix in ("p50", "p95", "p99"):
            assert f'lat_{suffix}{{table="t"}}' in text

    def test_summary_lines_include_quantiles(self):
        registry = obs.enable_metrics()
        registry.histogram("lat", buckets=[1.0, 5.0]).observe(2.0)
        text = "\n".join(obs.summary_lines(registry, None))
        assert "p50=" in text and "p95=" in text and "p99=" in text


class TestMetricDeltas:
    def test_counters_reset_and_merge(self):
        worker = MetricsRegistry()
        worker.counter("rows_total").inc(10, table="t")
        deltas = worker.export_deltas()
        assert worker.counter("rows_total").value(table="t") == 0
        parent = MetricsRegistry()
        parent.counter("rows_total").inc(5, table="t")
        parent.merge_deltas(deltas)
        assert parent.counter("rows_total").value(table="t") == 15

    def test_gauges_merge_by_max(self):
        worker = MetricsRegistry()
        worker.gauge("depth").set(7)
        parent = MetricsRegistry()
        parent.gauge("depth").set(3)
        parent.merge_deltas(worker.export_deltas())
        assert parent.gauge("depth").value() == 7
        lower = MetricsRegistry()
        lower.gauge("depth").set(2)
        parent.merge_deltas(lower.export_deltas())
        assert parent.gauge("depth").value() == 7

    def test_histograms_merge_buckets_and_sum(self):
        worker = MetricsRegistry()
        worker.histogram("lat", buckets=[1.0, 10.0]).observe(5.0)
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=[1.0, 10.0]).observe(0.5)
        parent.merge_deltas(worker.export_deltas())
        text = obs.render_prometheus(parent)
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 5.5" in text

    def test_merge_none_is_noop(self):
        parent = MetricsRegistry()
        parent.merge_deltas(None)
        parent.merge_deltas({})
        assert parent.metrics() == []

    def test_deltas_after_reset_are_empty_shells(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(3)
        worker.export_deltas()
        second = worker.export_deltas()
        values = dict(second["counters"])["c"] if second["counters"] else []
        assert all(value == 0 for _key, value in values)


class TestTraceFileRobustness:
    def _write_spans(self, path):
        tracer = obs.enable_tracing()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.write_trace_jsonl(tracer, path)
        obs.reset()

    def test_gzip_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        self._write_spans(path)
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        records = obs.read_trace_jsonl(path)
        assert [r.name for r in records] == ["inner", "outer"]

    def test_gzip_detected_by_magic_not_name(self, tmp_path):
        gz_path = str(tmp_path / "trace.jsonl.gz")
        self._write_spans(gz_path)
        import shutil
        renamed = str(tmp_path / "renamed.jsonl")
        shutil.copy(gz_path, renamed)
        assert len(obs.read_trace_jsonl(renamed)) == 2

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._write_spans(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "span", "span_id": 99, "name": "to')
        records = obs.read_trace_jsonl(path)
        assert [r.name for r in records] == ["inner", "outer"]

    def test_garbage_in_the_middle_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_spans(str(path))
        content = path.read_text()
        lines = content.splitlines()
        lines.insert(1, "not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError):
            obs.read_trace_jsonl(str(path))

    def test_truncated_gzip_keeps_durable_prefix(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        tracer = obs.enable_tracing()
        for index in range(200):
            with obs.span("work", index=index):
                pass
        obs.write_trace_jsonl(tracer, path)
        obs.reset()
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        records = obs.read_trace_jsonl(path)
        assert 0 < len(records) < 200
        assert all(r.name == "work" for r in records)


class TestSpanTree:
    def _records(self):
        tracer = obs.enable_tracing()
        with obs.span("scheduler.run"):
            with obs.span("scheduler.package", table="t", sequence=0,
                          rows=10) as package:
                package.set(bytes=100)
                with obs.span("package.generate", table="t"):
                    pass
        records = tracer.drain()
        obs.reset()
        return records

    def test_build_tree_links_children(self):
        records = self._records()
        roots, children = obs.build_span_tree(records)
        assert [r.name for r in roots] == ["scheduler.run"]
        run = roots[0]
        assert [c.name for c in children[run.span_id]] == ["scheduler.package"]

    def test_orphan_parents_become_roots(self):
        records = self._records()
        orphans = [r for r in records if r.name != "scheduler.run"]
        roots, _children = obs.build_span_tree(orphans)
        assert [r.name for r in roots] == ["scheduler.package"]

    def test_render_indents_and_shows_attrs(self):
        lines = obs.render_span_tree(self._records())
        assert lines[0].startswith("scheduler.run")
        assert any(line.startswith("  scheduler.package") for line in lines)
        assert any("table=t" in line for line in lines)

    def test_sibling_elision(self):
        tracer = obs.enable_tracing()
        with obs.span("run"):
            for index in range(20):
                with obs.span("child", index=index):
                    pass
        lines = obs.render_span_tree(tracer.drain(), max_children=5)
        obs.reset()
        assert any("more sibling spans elided" in line for line in lines)

    def test_table_totals_from_package_spans(self):
        records = self._records()
        assert obs.table_totals(records) == {"t": (10, 100)}


class TestResetAtomicity:
    def test_generation_increments_on_reset(self):
        before = obs.generation()
        obs.reset()
        assert obs.generation() == before + 1

    def test_state_snapshot_is_consistent(self):
        tracer = obs.enable_tracing()
        registry = obs.enable_metrics()
        generation, snap_tracer, snap_registry, snap_profiler = obs.state()
        assert snap_tracer is tracer
        assert snap_registry is registry
        assert snap_profiler is None
        assert generation == obs.generation()

    def test_reset_hammer_against_exporter(self):
        """A reader thread continuously rendering whatever obs.state()
        returns must never crash while another thread enables/resets —
        the regression test for torn global swaps."""
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                _generation, _tracer, registry, _profiler = obs.state()
                try:
                    if registry is not None:
                        obs.render_prometheus(registry)
                except BaseException as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(300):
                registry = obs.enable_metrics()
                registry.counter("hammer_total").inc()
                registry.histogram("lat", buckets=[1.0]).observe(0.5)
                obs.reset()
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not errors
