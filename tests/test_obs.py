"""Unit tests for the observability subsystem: tracing spans, the
metrics registry, and the exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.exceptions import ReproError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Stopwatch, Tracer


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


class TestTracer:
    def test_span_records_timing_and_thread(self):
        tracer = Tracer()
        with tracer.span("work", table="t") as active:
            pass
        assert active.seconds >= 0
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.attrs == {"table": "t"}
        assert record.thread_id == threading.get_ident()
        assert record.duration >= 0
        assert record.parent_id is None

    def test_nesting_parents_inner_spans(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        records = {r.name: r for r in tracer.spans()}
        assert records["inner"].parent_id == outer.span_id
        assert records["outer"].parent_id is None
        assert inner.span_id != outer.span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.spans()}
        assert by_name["a"].parent_id == outer.span_id
        assert by_name["b"].parent_id == outer.span_id

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            done = threading.Event()

            def worker():
                with tracer.span("package", parent_id=run.span_id):
                    pass
                done.set()

            threading.Thread(target=worker).start()
            assert done.wait(5)
        by_name = {r.name: r for r in tracer.spans()}
        assert by_name["package"].parent_id == run.span_id

    def test_exception_is_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record.attrs["error"] == "ValueError"

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("s") as active:
            active.set(rows=10, bytes=200)
        (record,) = tracer.spans()
        assert record.attrs == {"rows": 10, "bytes": 200}

    def test_per_thread_stacks_do_not_interfere(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def worker(name: str):
            barrier.wait()
            for _ in range(50):
                with tracer.span(name):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.spans()
        assert len(records) == 200
        assert all(r.parent_id is None for r in records)


class TestModuleState:
    def test_disabled_span_is_shared_noop(self):
        assert obs.active_tracer() is None
        span = obs.span("anything", attr=1)
        assert span is NOOP_SPAN
        with span as entered:
            entered.set(ignored=True)
        assert span.seconds == 0.0

    def test_enable_records_disable_stops(self):
        tracer = obs.enable_tracing()
        with obs.span("seen"):
            pass
        obs.disable_tracing()
        with obs.span("unseen"):
            pass
        assert [r.name for r in tracer.spans()] == ["seen"]

    def test_timed_measures_even_when_disabled(self):
        with obs.timed("phase") as phase:
            sum(range(1000))
        assert isinstance(phase, Stopwatch)
        assert phase.seconds > 0

    def test_timed_records_span_when_enabled(self):
        tracer = obs.enable_tracing()
        with obs.timed("phase") as phase:
            pass
        assert phase.seconds >= 0
        assert [r.name for r in tracer.spans()] == ["phase"]


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value() == 6

    def test_labels_are_independent(self):
        counter = Counter("c")
        counter.inc(2, table="a")
        counter.inc(3, table="b")
        assert counter.value(table="a") == 2
        assert counter.value(table="b") == 3
        assert counter.total() == 5

    def test_bound_counter_fast_path(self):
        counter = Counter("c")
        bound = counter.labels(table="t")
        for _ in range(10):
            bound.inc()
        assert counter.value(table="t") == 10

    def test_negative_increment_rejected(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1)

    def test_concurrent_increments_lose_nothing(self):
        counter = Counter("c")
        bound = counter.labels(table="t")

        def worker():
            for _ in range(1000):
                bound.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(table="t") == 8000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.add(2)
        assert gauge.value() == 7

    def test_set_max_keeps_watermark(self):
        gauge = Gauge("g")
        gauge.set_max(3)
        gauge.set_max(1)
        gauge.set_max(9)
        assert gauge.value() == 9


class TestHistogram:
    def test_observation_buckets(self):
        histogram = Histogram("h", buckets=[10, 100, 1000])
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 5555
        # cumulative: <=10, <=100, <=1000, +Inf
        assert snap["buckets"] == [1, 2, 3, 4]

    def test_boundary_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=[10, 100])
        histogram.observe(10)
        assert histogram.snapshot()["buckets"] == [1, 1, 1]

    def test_labels(self):
        histogram = Histogram("h", buckets=[1])
        histogram.labels(table="a").observe(0.5)
        histogram.observe(2.0, table="b")
        assert histogram.snapshot(table="a")["count"] == 1
        assert histogram.snapshot(table="b")["buckets"] == [0, 1]

    def test_empty_bounds_rejected(self):
        with pytest.raises(ReproError):
            Histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_metrics_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.gauge("alpha")
        assert [m.name for m in registry.metrics()] == ["alpha", "zeta"]

    def test_process_global_enable_disable(self):
        assert obs.active_metrics() is None
        registry = obs.enable_metrics()
        assert obs.active_metrics() is registry
        obs.disable_metrics()
        assert obs.active_metrics() is None


class TestExporters:
    def test_trace_jsonl_round_trip(self, tmp_path):
        tracer = obs.enable_tracing()
        with obs.span("outer", table="t"):
            with obs.span("inner"):
                pass
        path = str(tmp_path / "trace.jsonl")
        written = obs.write_trace_jsonl(tracer, path)
        assert written == 2
        records = obs.read_trace_jsonl(path)
        assert [r.name for r in records] == ["inner", "outer"]
        by_name = {r.name: r for r in records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].attrs == {"table": "t"}

    def test_trace_jsonl_lines_are_json(self, tmp_path):
        tracer = obs.enable_tracing()
        with obs.span("s"):
            pass
        path = str(tmp_path / "trace.jsonl")
        obs.write_trace_jsonl(tracer, path)
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert lines[0]["event"] == "meta"
        assert lines[1]["event"] == "span"

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            obs.read_trace_jsonl(str(path))

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("rows_total", "rows").inc(7, table="t")
        registry.gauge("depth").set(3)
        registry.histogram("lat", buckets=[1.0, 2.0]).observe(1.5)
        text = obs.render_prometheus(registry)
        assert "# TYPE rows_total counter" in text
        assert 'rows_total{table="t"} 7' in text
        assert "# HELP rows_total rows" in text
        assert "depth 3" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert "lat_sum 1.5" in text

    def test_prometheus_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=[10.0, 100.0])
        histogram.observe(5)
        histogram.observe(50)
        text = obs.render_prometheus(registry)
        assert 'h_bucket{le="10.0"} 1' in text
        assert 'h_bucket{le="100.0"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text

    def test_aggregate_spans_orders_by_total(self):
        tracer = obs.enable_tracing()
        for _ in range(3):
            with obs.span("fast"):
                pass
        aggregates = obs.aggregate_spans(tracer.spans())
        assert aggregates[0].name == "fast"
        assert aggregates[0].count == 3
        assert aggregates[0].mean_seconds >= 0

    def test_summary_lines(self):
        registry = obs.enable_metrics()
        tracer = obs.enable_tracing()
        registry.counter("rows_generated_total").inc(42, table="t")
        with obs.span("scheduler.run"):
            pass
        lines = obs.summary_lines(registry, tracer)
        text = "\n".join(lines)
        assert "rows_generated_total" in text
        assert "scheduler.run" in text

    def test_write_metrics_text(self, tmp_path):
        registry = obs.enable_metrics()
        registry.counter("c").inc()
        path = str(tmp_path / "metrics.prom")
        obs.write_metrics_text(registry, path)
        assert "c 1" in open(path, encoding="utf-8").read()
