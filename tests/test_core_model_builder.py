"""Tests for DBSynth's model builder — the paper's generator-choice
policy (§3) and the resulting models."""

from __future__ import annotations

import pytest

from repro.core.dictionary_builder import DictionaryBuilder, dictionary_artifact_name
from repro.core.extraction import SchemaExtractor
from repro.core.markov_builder import MarkovBuilder, markov_artifact_name
from repro.core.model_builder import BuildOptions, ModelBuilder, build_model
from repro.core.profiling import DataProfiler
from repro.core.sampling import SampleConfig
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.engine import GenerationEngine
from repro.exceptions import ExtractionError
from repro.generators.base import ArtifactStore
from repro.model.validation import ensure_valid


@pytest.fixture
def built(imdb_adapter):
    return build_model(imdb_adapter, name="imdb")


class TestGeneratorChoice:
    def test_foreign_keys_beat_everything(self, built):
        decision = built.decision_for("cast_members", "movie_id")
        assert decision.generator == "DefaultReferenceGenerator"
        spec = built.schema.table_by_name("cast_members").field_by_name(
            "movie_id"
        ).generator
        assert spec.params["table"] == "movies"

    def test_primary_integer_becomes_id(self, built):
        assert built.decision_for("movies", "movie_id").generator == "IdGenerator"

    def test_categorical_text_becomes_dictionary(self, built):
        decision = built.decision_for("movies", "genre")
        assert decision.generator == "DictListGenerator"
        assert dictionary_artifact_name("movies", "genre") in built.artifacts

    def test_free_text_becomes_markov(self, built):
        field = built.schema.table_by_name("movies").field_by_name("plot")
        spec = field.generator
        # plot is nullable in the source, so the Markov generator sits
        # inside a NULL wrapper.
        assert spec.name == "NullGenerator"
        assert spec.child().name == "MarkovChainGenerator"
        assert markov_artifact_name("movies", "plot") in built.artifacts

    def test_numeric_bounds_from_profile(self, built, imdb_adapter):
        schema = built.schema
        lo, hi = imdb_adapter.min_max("movies", "votes")
        assert schema.properties.get_float("movies_votes_min") == lo
        assert schema.properties.get_float("movies_votes_max") == hi

    def test_null_wrapper_probability_matches_source(self, built, imdb_adapter):
        spec = built.schema.table_by_name("people").field_by_name(
            "birth_year"
        ).generator
        assert spec.name == "NullGenerator"
        expected = imdb_adapter.null_fraction("people", "birth_year")
        assert float(spec.params["probability"]) == pytest.approx(expected, abs=1e-4)

    def test_table_sizes_scale_with_sf(self, built):
        schema = built.schema
        assert schema.table_size("movies") == 80
        schema.properties.override("SF", 2)
        assert schema.table_size("movies") == 160

    def test_model_validates(self, built):
        ensure_valid(built.schema)

    def test_model_generates(self, built):
        engine = GenerationEngine(built.schema, built.artifacts)
        rows = list(engine.iter_rows("movies", 0, 10))
        assert len(rows) == 10
        assert rows[0][0] == 1  # movie_id from IdGenerator

    def test_decisions_cover_every_column(self, built, imdb_adapter):
        total_columns = sum(
            len(imdb_adapter.columns(t)) for t in imdb_adapter.table_names()
        )
        assert len(built.decisions) == total_columns

    def test_decision_lookup_missing(self, built):
        with pytest.raises(ExtractionError):
            built.decision_for("movies", "ghost")


class TestNoSampling:
    def test_rule_fallback_without_sampling(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        profile = DataProfiler(imdb_adapter).profile(extracted)
        builder = ModelBuilder(imdb_adapter, BuildOptions(sample_data=False))
        result = builder.build(extracted, profile, name="imdb_nosample")
        # Without sampling, name rules choose high-level generators
        # (paper §3: "the column name is parsed to determine whether a
        # matching high level generator construct exists").
        title = result.decision_for("people", "name")
        assert title.generator in ("PersonNameGenerator", "NullGenerator")
        plot = result.schema.table_by_name("movies").field_by_name("plot").generator
        inner = plot.child() if plot.name == "NullGenerator" else plot
        assert inner.name == "TextGenerator"
        assert not result.artifacts.names()

    def test_unmatched_text_falls_back_to_random_string(self, imdb_adapter):
        imdb_adapter.execute_script(
            "CREATE TABLE odd (xyzzy VARCHAR(12)); INSERT INTO odd VALUES ('abc');"
        )
        result = build_model(
            imdb_adapter, options=BuildOptions(sample_data=False), profile=False
        )
        assert result.decision_for("odd", "xyzzy").generator == "RandomStringGenerator"


class TestCatalogOnlyModel:
    def test_basic_extraction_without_profile(self, imdb_adapter):
        result = build_model(imdb_adapter, profile=False)
        ensure_valid(result.schema)
        # No NULL wrappers without profiling (no null stats available).
        spec = result.schema.table_by_name("people").field_by_name(
            "birth_year"
        ).generator
        assert spec.name != "NullGenerator"


class TestConstantColumns:
    def test_constant_becomes_static(self, imdb_adapter):
        imdb_adapter.execute_script(
            "CREATE TABLE k (flag INTEGER); "
            "INSERT INTO k VALUES (7), (7), (7), (7);"
        )
        result = build_model(imdb_adapter)
        assert result.decision_for("k", "flag").generator == "StaticValueGenerator"
        engine = GenerationEngine(result.schema, result.artifacts)
        assert all(v[0] == 7 for v in engine.iter_rows("k"))


class TestBuilders:
    def test_dictionary_builder(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        artifacts = ArtifactStore()
        dictionary = DictionaryBuilder(
            imdb_adapter, SampleConfig(fraction=1.0)
        ).build(extracted, "movies", "genre", artifacts)
        source_genres = {
            row[0] for row in imdb_adapter.execute("SELECT DISTINCT genre FROM movies")
        }
        assert set(dictionary.values()) == source_genres
        assert dictionary_artifact_name("movies", "genre") in artifacts

    def test_dictionary_builder_empty_column(self, imdb_adapter):
        imdb_adapter.execute_script("CREATE TABLE e (t TEXT);")
        extracted = SchemaExtractor(imdb_adapter).extract()
        with pytest.raises(ExtractionError):
            DictionaryBuilder(imdb_adapter).build(
                extracted, "e", "t", ArtifactStore()
            )

    def test_markov_builder_parameters_from_data(self, imdb_adapter):
        extracted = SchemaExtractor(imdb_adapter).extract()
        result = MarkovBuilder(imdb_adapter, SampleConfig(fraction=1.0)).build(
            extracted, "movies", "plot", ArtifactStore()
        )
        assert result.chain.trained
        assert 1 <= result.min_words <= result.max_words
        assert result.vocabulary_size > 10
        assert result.start_states >= 1

    def test_markov_builder_empty_column(self, imdb_adapter):
        imdb_adapter.execute_script("CREATE TABLE e2 (t TEXT);")
        extracted = SchemaExtractor(imdb_adapter).extract()
        with pytest.raises(ExtractionError):
            MarkovBuilder(imdb_adapter).build(extracted, "e2", "t", ArtifactStore())


class TestDeterminismOfBuiltModels:
    def test_same_source_same_model(self, imdb_adapter):
        from repro.config import schema_xml

        a = build_model(imdb_adapter, name="m")
        b = build_model(imdb_adapter, name="m")
        assert schema_xml.dumps(a.schema) == schema_xml.dumps(b.schema)

    def test_generated_data_is_repeatable(self, imdb_adapter):
        result = build_model(imdb_adapter, name="m")
        a = GenerationEngine(result.schema, result.artifacts)
        b = GenerationEngine(result.schema, result.artifacts)
        assert list(a.iter_rows("movies", 0, 20)) == list(b.iter_rows("movies", 0, 20))
