"""Tests for work partitioning, the thread scheduler, and the meta
scheduler — the parallel-equals-serial guarantees of paper §2/§4."""

from __future__ import annotations

import pytest

from repro.engine import GenerationEngine
from repro.exceptions import SchedulingError
from repro.output.config import OutputConfig
from repro.scheduler.meta import MetaScheduler, node_ranges, run_node
from repro.scheduler.progress import ProgressMonitor
from repro.scheduler.scheduler import Scheduler, generate
from repro.scheduler.work import WorkPackage, node_share, partition_rows, plan_node
from tests.conftest import demo_schema


class TestPartitionRows:
    def test_exact_split(self):
        packages = partition_rows("t", 100, 25)
        assert len(packages) == 4
        assert packages[0] == WorkPackage("t", 0, 25, 0)
        assert packages[-1] == WorkPackage("t", 75, 100, 3)

    def test_remainder_package(self):
        packages = partition_rows("t", 10, 4)
        assert [p.rows for p in packages] == [4, 4, 2]

    def test_covers_every_row_once(self):
        packages = partition_rows("t", 997, 100)
        rows = [r for p in packages for r in range(p.start, p.stop)]
        assert rows == list(range(997))

    def test_empty_table(self):
        assert partition_rows("t", 0, 10) == []

    def test_offset(self):
        packages = partition_rows("t", 10, 4, offset=100)
        assert packages[0].start == 100
        assert packages[-1].stop == 110

    def test_bad_inputs(self):
        with pytest.raises(SchedulingError):
            partition_rows("t", -1, 10)
        with pytest.raises(SchedulingError):
            partition_rows("t", 10, 0)


class TestNodeShare:
    def test_disjoint_and_complete(self):
        size, nodes = 1003, 7
        covered = []
        for node in range(nodes):
            start, stop = node_share(size, nodes, node)
            covered.extend(range(start, stop))
        assert covered == list(range(size))

    def test_balanced(self):
        sizes = [node_share(100, 3, n) for n in range(3)]
        widths = [stop - start for start, stop in sizes]
        assert max(widths) - min(widths) <= 1

    def test_single_node_gets_everything(self):
        assert node_share(50, 1, 0) == (0, 50)

    def test_more_nodes_than_rows(self):
        shares = [node_share(2, 5, n) for n in range(5)]
        rows = [r for start, stop in shares for r in range(start, stop)]
        assert rows == [0, 1]

    def test_bad_inputs(self):
        with pytest.raises(SchedulingError):
            node_share(10, 0, 0)
        with pytest.raises(SchedulingError):
            node_share(10, 3, 3)

    def test_plan_node_covers_tables(self):
        packages = plan_node({"a": 10, "b": 7}, 2, 0, package_size=3)
        tables = {p.table for p in packages}
        assert tables == {"a", "b"}


class TestScheduler:
    def test_single_worker_run(self, engine):
        report = generate(engine, OutputConfig(kind="null"))
        assert report.rows == 240
        assert report.bytes_written > 0
        assert report.seconds > 0

    def test_parallel_equals_serial(self, engine):
        serial = OutputConfig(kind="memory")
        generate(GenerationEngine(demo_schema()), serial, workers=1)
        parallel = OutputConfig(kind="memory")
        generate(GenerationEngine(demo_schema()), parallel, workers=4, package_size=17)
        for table in ("customer", "orders"):
            assert serial.memory_output(table) == parallel.memory_output(table)

    def test_table_subset(self, engine):
        report = generate(engine, OutputConfig(kind="null"), tables=["customer"])
        assert report.rows == 60

    def test_row_ranges(self, engine):
        scheduler = Scheduler(engine, OutputConfig(kind="null"))
        report = scheduler.run(row_ranges={"customer": (10, 20), "orders": (0, 5)})
        assert report.rows == 15

    def test_file_output(self, engine, tmp_path):
        config = OutputConfig(kind="file", format="csv", directory=str(tmp_path))
        report = generate(engine, config, workers=2)
        customer = (tmp_path / "customer.tbl").read_text()
        assert len(customer.splitlines()) == 60
        assert report.bytes_written > 0

    def test_xml_header_footer_once(self, engine, tmp_path):
        config = OutputConfig(kind="file", format="xml", directory=str(tmp_path))
        generate(engine, config, workers=3, package_size=20)
        text = (tmp_path / "orders.xml").read_text()
        assert text.count("<?xml") == 1
        assert text.count("</table>") == 1
        import xml.etree.ElementTree as ET

        root = ET.fromstring(text)
        assert len(root.findall("row")) == 180

    def test_invalid_worker_count(self, engine):
        with pytest.raises(SchedulingError):
            Scheduler(engine, OutputConfig(kind="null"), workers=0)

    def test_progress_reported(self, engine):
        progress = ProgressMonitor(engine.total_rows(), engine.sizes)
        generate(engine, OutputConfig(kind="null"), workers=2, progress=progress)
        snapshot = progress.snapshot()
        assert snapshot.rows_done == 240
        assert snapshot.fraction == 1.0
        per_table = progress.table_progress()
        assert per_table["customer"] == (60, 60)
        assert per_table["orders"] == (180, 180)


class TestMetaScheduler:
    def test_node_ranges_cover_all_tables(self, engine):
        ranges = node_ranges(engine.sizes, 3, 1)
        assert set(ranges) == {"customer", "orders"}

    def test_union_of_nodes_equals_single_run(self):
        schema = demo_schema()
        single = OutputConfig(kind="memory")
        generate(GenerationEngine(schema), single, workers=1)
        for table in ("customer", "orders"):
            parts = []
            for node in range(4):
                config = OutputConfig(kind="memory")
                run_node(schema, 4, node, config)
                parts.append(config.memory_output(table))
            assert "".join(parts) == single.memory_output(table)

    def test_node_reports_row_counts(self):
        schema = demo_schema()
        report = run_node(schema, 2, 0, OutputConfig(kind="null"))
        other = run_node(schema, 2, 1, OutputConfig(kind="null"))
        assert report.rows + other.rows == 240

    def test_inprocess_cluster_run(self):
        schema = demo_schema()
        cluster = MetaScheduler(schema).run(nodes=3, processes=False)
        assert cluster.rows == 240
        assert len(cluster.nodes) == 3
        assert cluster.bytes_written > 0

    def test_multiprocess_cluster_run(self):
        schema = demo_schema()
        cluster = MetaScheduler(schema).run(nodes=2, processes=True)
        assert cluster.rows == 240
        assert cluster.seconds > 0

    def test_invalid_node_count(self):
        with pytest.raises(SchedulingError):
            MetaScheduler(demo_schema()).run(nodes=0)


class TestProgressMonitor:
    def test_throughput_metrics(self):
        progress = ProgressMonitor(100)
        progress.add("t", 50, 1024 * 1024)
        snapshot = progress.snapshot()
        assert snapshot.rows_done == 50
        assert 0 < snapshot.fraction <= 1.0
        assert snapshot.mb_per_second >= 0

    def test_callback_rate_limited(self):
        seen = []
        progress = ProgressMonitor(10, callback=seen.append, min_interval=3600)
        for _ in range(10):
            progress.add("t", 1, 10)
        assert len(seen) <= 1

    def test_zero_total(self):
        progress = ProgressMonitor(0)
        assert progress.snapshot().fraction == 1.0
