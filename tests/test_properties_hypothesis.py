"""Property-based tests (hypothesis) for the core invariants.

These are the guarantees the paper's generation strategy rests on:
repeatability, parallel/serial equivalence, exact node partitioning,
reference integrity at any scale, and round-trip-stable serialization.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import GenerationEngine
from repro.model import formula as formula_mod
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from repro.output.config import OutputConfig
from repro.prng.xorshift import (
    MASK64,
    XorShift64Star,
    combine64,
    hash_string64,
    mix64,
)
from repro.scheduler import generate
from repro.scheduler.work import node_share, partition_rows
from repro.text.dictionary import WeightedDictionary
from repro.text.markov import MarkovChain, train_chain
from repro.text.tokenizer import words

_fast = settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])


class TestPrngProperties:
    @given(st.integers(min_value=0, max_value=MASK64))
    def test_mix64_stays_in_64_bits(self, value):
        assert 0 <= mix64(value) <= MASK64

    @given(st.integers(min_value=0, max_value=MASK64),
           st.integers(min_value=0, max_value=2**31))
    def test_combine64_deterministic(self, seed, index):
        assert combine64(seed, index) == combine64(seed, index)

    @given(st.text(min_size=0, max_size=50))
    def test_hash_string_deterministic(self, text):
        assert hash_string64(text) == hash_string64(text)

    @given(st.integers(min_value=0, max_value=MASK64),
           st.integers(min_value=1, max_value=10**9))
    def test_next_long_in_bounds(self, seed, bound):
        rng = XorShift64Star(seed)
        for _ in range(20):
            assert 0 <= rng.next_long(bound) < bound

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_stream_restart(self, seed):
        a = XorShift64Star(seed)
        first = [a.next_u64() for _ in range(10)]
        a.reseed(seed)
        assert [a.next_u64() for _ in range(10)] == first


class TestPartitioningProperties:
    @given(st.integers(min_value=0, max_value=50_000),
           st.integers(min_value=1, max_value=5_000))
    def test_packages_cover_exactly(self, size, package_size):
        packages = partition_rows("t", size, package_size)
        covered = []
        for package in packages:
            covered.extend(range(package.start, package.stop))
        assert covered == list(range(size))
        assert [p.sequence for p in packages] == list(range(len(packages)))

    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=1, max_value=64))
    def test_node_shares_partition_exactly(self, size, nodes):
        covered = []
        for node in range(nodes):
            start, stop = node_share(size, nodes, node)
            assert 0 <= start <= stop <= size
            covered.extend(range(start, stop))
        assert covered == list(range(size))

    @given(st.integers(min_value=1, max_value=100_000),
           st.integers(min_value=1, max_value=64))
    def test_node_shares_balanced(self, size, nodes):
        widths = [
            stop - start
            for start, stop in (node_share(size, nodes, n) for n in range(nodes))
        ]
        assert max(widths) - min(widths) <= 1


def _tiny_schema(seed: int, rows: int) -> Schema:
    schema = Schema("prop", seed=seed)
    schema.add_table(Table("p", str(max(rows // 4, 1)), [
        Field.of("pid", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
    ]))
    schema.add_table(Table("t", str(rows), [
        Field.of("id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
        Field.of("ref", "BIGINT", GeneratorSpec(
            "DefaultReferenceGenerator", {"table": "p", "field": "pid"}
        )),
        Field.of("num", "INTEGER", GeneratorSpec(
            "IntGenerator", {"min": 0, "max": 1000}
        )),
    ]))
    return schema


class TestGenerationProperties:
    @_fast
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=1, max_value=300))
    def test_regeneration_identical(self, seed, rows):
        schema = _tiny_schema(seed, rows)
        a = list(GenerationEngine(schema).iter_rows("t"))
        b = list(GenerationEngine(schema).iter_rows("t"))
        assert a == b

    @_fast
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=5, max_value=100))
    def test_parallel_equals_serial(self, seed, workers, package_size):
        schema = _tiny_schema(seed, 150)
        serial = OutputConfig(kind="memory")
        generate(GenerationEngine(schema), serial, workers=1)
        parallel = OutputConfig(kind="memory")
        generate(GenerationEngine(schema), parallel, workers=workers,
                 package_size=package_size)
        assert serial.memory_output("t") == parallel.memory_output("t")

    @_fast
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=1, max_value=8))
    def test_node_union_equals_single_run(self, seed, nodes):
        from repro.scheduler.meta import run_node

        schema = _tiny_schema(seed, 120)
        single = OutputConfig(kind="memory")
        generate(GenerationEngine(schema), single, workers=1)
        parts = []
        for node in range(nodes):
            config = OutputConfig(kind="memory")
            run_node(schema, nodes, node, config)
            parts.append(config.memory_output("t"))
        assert "".join(parts) == single.memory_output("t")

    @_fast
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=4, max_value=400))
    def test_references_always_resolve(self, seed, rows):
        schema = _tiny_schema(seed, rows)
        engine = GenerationEngine(schema)
        parent_keys = {v[0] for v in engine.iter_rows("p")}
        for _id, ref, _num in engine.iter_rows("t"):
            assert ref in parent_keys

    @_fast
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_access_equals_sequential(self, seed):
        schema = _tiny_schema(seed, 60)
        engine = GenerationEngine(schema)
        sequential = list(engine.iter_rows("t"))
        for row in (0, 59, 17, 3, 42):
            assert engine.generate_row("t", row) == sequential[row]


class TestFormulaProperties:
    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_python_eval(self, a, b, c):
        env = {"a": float(a), "b": float(b), "c": float(c)}
        expression = "(a + b) * 2 - a % c + b // c"
        expected = (a + b) * 2 - a % c + b // c
        assert formula_mod.evaluate(expression, env) == expected

    @given(st.floats(min_value=0.001, max_value=10**6, allow_nan=False))
    def test_sqrt_round_trip(self, x):
        result = formula_mod.evaluate("sqrt(${x}) ** 2", {"x": x})
        assert abs(result - x) < max(x * 1e-9, 1e-9)


class TestTextProperties:
    @given(st.lists(st.sampled_from(["red", "green", "blue", "teal"]),
                    min_size=1, max_size=200))
    def test_dictionary_round_trip(self, values):
        d = WeightedDictionary.from_values(values)
        assert WeightedDictionary.loads(d.dumps()).dumps() == d.dumps()

    @given(st.lists(st.sampled_from(["red", "green", "blue"]),
                    min_size=1, max_size=100))
    def test_dictionary_weights_sum_to_one(self, values):
        d = WeightedDictionary.from_values(values)
        assert abs(sum(e.weight for e in d.entries) - 1.0) < 1e-9

    @_fast
    @given(st.lists(
        st.lists(st.sampled_from(["ship", "pack", "box", "send", "mail"]),
                 min_size=1, max_size=8).map(" ".join),
        min_size=1, max_size=30,
    ), st.integers(min_value=0, max_value=2**32))
    def test_markov_only_emits_trained_bigrams(self, texts, seed):
        chain = train_chain(texts)
        observed = set()
        for text in texts:
            tokens = words(text)
            observed.update(zip(tokens, tokens[1:]))
        rng = XorShift64Star(seed)
        for _ in range(10):
            tokens = words(chain.generate(rng, 1, 12))
            for bigram in zip(tokens, tokens[1:]):
                assert bigram in observed

    @_fast
    @given(st.lists(
        st.lists(st.sampled_from(["a", "b", "c", "d"]),
                 min_size=1, max_size=6).map(" ".join),
        min_size=1, max_size=20,
    ))
    def test_markov_serialization_round_trip(self, texts):
        chain = train_chain(texts)
        assert MarkovChain.loads(chain.dumps()).dumps() == chain.dumps()


class TestNullProbabilityProperty:
    @_fast
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.integers(min_value=0, max_value=2**32))
    def test_null_fraction_within_statistical_bounds(self, probability, seed):
        schema = Schema("nulls", seed=seed)
        schema.add_table(Table("t", "400", [
            Field.of("x", "INTEGER", GeneratorSpec(
                "NullGenerator", {"probability": probability},
                [GeneratorSpec("IntGenerator", {"min": 0, "max": 9})],
            )),
        ]))
        engine = GenerationEngine(schema)
        values = [v[0] for v in engine.iter_rows("t")]
        fraction = sum(1 for v in values if v is None) / len(values)
        # 400 samples: allow a generous 4-sigma band.
        sigma = (probability * (1 - probability) / 400) ** 0.5
        assert abs(fraction - probability) <= 4 * sigma + 1e-9


class TestQueryPredictionProperties:
    """Analytic predictions track exact virtual execution for random
    range predicates (the §7 verification-results machinery)."""

    @staticmethod
    def _schema(seed: int) -> Schema:
        schema = Schema("qprop", seed=seed)
        schema.add_table(Table("t", "800", [
            Field.of("v", "INTEGER", GeneratorSpec(
                "IntGenerator", {"min": 0, "max": 99}
            )),
        ]))
        return schema

    @_fast
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=99),
           st.integers(min_value=0, max_value=99))
    def test_between_count_prediction(self, seed, a, b):
        from repro.core.queries import Aggregate, Op, Predicate, Query, VirtualExecutor

        low, high = min(a, b), max(a, b)
        schema = self._schema(seed)
        executor = VirtualExecutor(schema)
        query = Query("t", [Aggregate("count")],
                      [Predicate("v", Op.BETWEEN, low, high)])
        predicted = executor.predict(query)["COUNT(*)"]
        exact = executor.execute(query)["COUNT(*)"]
        selectivity = (high - low + 1) / 100
        sigma = (800 * selectivity * (1 - selectivity)) ** 0.5
        assert abs(exact - predicted.value) <= 5 * sigma + 2

    @_fast
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=100))
    def test_lt_prediction_monotone(self, seed, cut):
        from repro.core.queries import Aggregate, Op, Predicate, Query, VirtualExecutor

        executor = VirtualExecutor(self._schema(seed))
        query = Query("t", [Aggregate("count")], [Predicate("v", Op.LT, cut)])
        predicted = executor.predict(query)["COUNT(*)"]
        assert 0 <= predicted.value <= 800
        exact = executor.execute(query)["COUNT(*)"]
        assert abs(exact - predicted.value) <= 800 * 0.1 + 3
