"""Tests for the schema model and validation."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from repro.model.validation import (
    ensure_valid,
    reference_graph,
    topological_load_order,
    validate_schema,
)
from tests.conftest import demo_schema


class TestGeneratorSpec:
    def test_child_accessor(self):
        child = GeneratorSpec("StaticValueGenerator")
        parent = GeneratorSpec("NullGenerator", {"probability": 0.5}, [child])
        assert parent.child() is child

    def test_child_requires_exactly_one(self):
        with pytest.raises(ModelError):
            GeneratorSpec("NullGenerator").child()
        two = GeneratorSpec("NullGenerator", children=[
            GeneratorSpec("A"), GeneratorSpec("B")
        ])
        with pytest.raises(ModelError):
            two.child()


class TestTable:
    def test_field_lookup(self):
        table = Table("t", "10", [
            Field.of("a", "BIGINT", GeneratorSpec("IdGenerator")),
            Field.of("b", "TEXT", GeneratorSpec("RandomStringGenerator")),
        ])
        assert table.field_index("b") == 1
        assert table.field_by_name("a").name == "a"

    def test_missing_field_raises(self):
        table = Table("t", "10", [])
        with pytest.raises(ModelError, match="no field"):
            table.field_index("ghost")

    def test_primary_key(self):
        table = Table("t", "10", [
            Field.of("a", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
            Field.of("b", "TEXT", GeneratorSpec("RandomStringGenerator")),
        ])
        assert [f.name for f in table.primary_key()] == ["a"]


class TestSchema:
    def test_add_duplicate_table_rejected(self, schema):
        with pytest.raises(ModelError, match="duplicate"):
            schema.add_table(Table("customer", "1", [
                Field.of("x", "BIGINT", GeneratorSpec("IdGenerator"))
            ]))

    def test_table_lookup(self, schema):
        assert schema.table_index("orders") == 1
        with pytest.raises(ModelError):
            schema.table_by_name("ghost")

    def test_table_size_resolves_formula(self, schema):
        assert schema.table_size("customer") == 60

    def test_size_rescales_with_sf(self, schema):
        schema.properties.override("SF", 2)
        assert schema.table_size("customer") == 120

    def test_negative_size_rejected(self):
        schema = Schema("s")
        schema.add_table(Table("t", "-5", [
            Field.of("x", "BIGINT", GeneratorSpec("IdGenerator"))
        ]))
        with pytest.raises(ModelError, match=">= 0"):
            schema.table_size("t")

    def test_totals(self, schema):
        assert schema.total_rows() == 240
        assert schema.sizes() == {"customer": 60, "orders": 180}


class TestValidation:
    def test_valid_schema_has_no_problems(self, schema):
        assert validate_schema(schema) == []
        ensure_valid(schema)  # must not raise

    def test_empty_schema(self):
        problems = validate_schema(Schema("empty"))
        assert any("no tables" in p for p in problems)

    def test_table_without_fields(self):
        schema = Schema("s")
        schema.tables.append(Table("t", "10"))
        assert any("no fields" in p for p in validate_schema(schema))

    def test_duplicate_field_names(self):
        schema = Schema("s")
        schema.tables.append(Table("t", "10", [
            Field.of("x", "BIGINT", GeneratorSpec("IdGenerator")),
            Field.of("x", "BIGINT", GeneratorSpec("IdGenerator")),
        ]))
        assert any("duplicate field" in p for p in validate_schema(schema))

    def test_bad_size_expression(self):
        schema = Schema("s")
        schema.tables.append(Table("t", "${missing}", [
            Field.of("x", "BIGINT", GeneratorSpec("IdGenerator")),
        ]))
        assert any("bad size expression" in p for p in validate_schema(schema))

    def test_unresolvable_reference(self):
        schema = Schema("s")
        schema.tables.append(Table("t", "10", [
            Field.of("x", "BIGINT", GeneratorSpec(
                "DefaultReferenceGenerator", {"table": "ghost", "field": "id"}
            )),
        ]))
        assert any("unresolvable reference" in p for p in validate_schema(schema))

    def test_reference_missing_params(self):
        schema = Schema("s")
        schema.tables.append(Table("t", "10", [
            Field.of("x", "BIGINT", GeneratorSpec("DefaultReferenceGenerator")),
        ]))
        assert any("missing table/field" in p for p in validate_schema(schema))

    def test_null_probability_out_of_range(self):
        schema = Schema("s")
        schema.tables.append(Table("t", "10", [
            Field.of("x", "BIGINT", GeneratorSpec(
                "NullGenerator", {"probability": 1.5},
                [GeneratorSpec("IdGenerator")],
            )),
        ]))
        assert any("outside [0, 1]" in p for p in validate_schema(schema))

    def test_nested_generator_validated(self):
        schema = Schema("s")
        schema.tables.append(Table("t", "10", [
            Field.of("x", "BIGINT", GeneratorSpec(
                "NullGenerator", {"probability": 0.1},
                [GeneratorSpec(
                    "DefaultReferenceGenerator", {"table": "ghost", "field": "id"}
                )],
            )),
        ]))
        assert any("unresolvable" in p for p in validate_schema(schema))

    def test_ensure_valid_raises_with_all_problems(self):
        schema = Schema("")
        with pytest.raises(ModelError, match="invalid model"):
            ensure_valid(schema)


class TestReferenceGraph:
    def test_demo_graph(self, schema):
        graph = reference_graph(schema)
        assert graph == {"customer": set(), "orders": {"customer"}}

    def test_load_order_referenced_first(self, schema):
        order = topological_load_order(schema)
        assert order.index("customer") < order.index("orders")

    def test_load_order_tpch(self):
        from repro.suites.tpch import tpch_schema

        order = topological_load_order(tpch_schema(0.001))
        assert order.index("nation") < order.index("supplier")
        assert order.index("customer") < order.index("orders")
        assert order.index("part") < order.index("lineitem")
        assert order.index("supplier") < order.index("lineitem")

    def test_self_reference_does_not_hang(self):
        schema = Schema("s")
        schema.tables.append(Table("emp", "10", [
            Field.of("id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
            Field.of("manager", "BIGINT", GeneratorSpec(
                "DefaultReferenceGenerator", {"table": "emp", "field": "id"}
            )),
        ]))
        assert topological_load_order(schema) == ["emp"]


def test_demo_schema_fixture_is_valid():
    ensure_valid(demo_schema())
