"""Distributed observability: cross-process trace stitching, metric
delta propagation, and cluster node subtraces.

The acceptance bar mirrors the byte-identity bar of the resilience
tests: whatever backend (or cluster) ran, the stitched trace must tell
one coherent story — worker spans under the parent run span, per-table
totals identical across backends, deterministic counters byte-for-byte
equal — and a kill/respawn run must show the redo spans (attempt=2).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.engine import GenerationEngine
from repro.obs import SpanContext, span_payload, stitch_spans, table_totals
from repro.obs.trace import Tracer
from repro.output.config import OutputConfig
from repro.resilience import FaultPlan, RetryPolicy
from repro.scheduler import MetaScheduler, Scheduler
from tests.conftest import demo_schema


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


def _engine(seed: int = 42) -> GenerationEngine:
    return GenerationEngine(demo_schema(seed=seed))


#: deterministic counters that must agree across backends; latency
#: histograms and engine recompute counts are timing/cache dependent.
DETERMINISTIC_COUNTERS = (
    "rows_generated_total",
    "bytes_written_total",
    "packages_completed_total",
)


def _counter_values(registry, name: str) -> dict[tuple, float]:
    metric = registry.get(name)
    if metric is None:
        return {}
    return {
        key: metric.value(**dict(key)) for key in metric.label_sets()
    }


class TestSpanContext:
    def test_retry_advances_attempt_and_keeps_parent(self):
        ctx = SpanContext(parent_id=7)
        redo = ctx.retry()
        assert (redo.parent_id, redo.attempt) == (7, 2)
        assert redo.retry().attempt == 3
        assert ctx.attempt == 1  # frozen original untouched

    def test_defaults(self):
        ctx = SpanContext()
        assert ctx.parent_id is None
        assert ctx.attempt == 1


class TestStitchSpans:
    def test_remaps_ids_and_links_roots(self):
        worker = Tracer()
        with worker.span("scheduler.package", table="t"):
            with worker.span("package.generate", table="t"):
                pass
        payload = span_payload(worker)

        parent = Tracer()
        with parent.span("scheduler.run") as run:
            pass
        adopted = stitch_spans(parent, payload, parent_id=run.span_id)
        assert adopted == 2

        by_name = {r.name: r for r in parent.spans()}
        package = by_name["scheduler.package"]
        generate = by_name["package.generate"]
        assert package.parent_id == run.span_id
        assert generate.parent_id == package.span_id
        # remapped ids never collide with the parent's own
        ids = [r.span_id for r in parent.spans()]
        assert len(ids) == len(set(ids))
        assert "pid" in package.attrs

    def test_clock_reanchored_to_parent_epoch(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        payload = span_payload(worker)
        parent = Tracer()
        stitch_spans(parent, payload)
        (record,) = parent.spans()
        expected = payload["epoch_wall"] - parent.epoch_wall
        assert record.start >= expected - 1e-6

    def test_none_and_empty_payloads_are_noops(self):
        parent = Tracer()
        assert stitch_spans(parent, None) == 0
        assert stitch_spans(parent, {"spans": []}) == 0
        assert parent.spans() == []

    def test_extra_attrs_tag_every_span(self):
        worker = Tracer()
        with worker.span("a"):
            pass
        parent = Tracer()
        stitch_spans(parent, span_payload(worker), extra_attrs={"node": 3})
        (record,) = parent.spans()
        assert record.attrs["node"] == 3

    def test_drain_empties_worker_buffer(self):
        worker = Tracer()
        with worker.span("once"):
            pass
        span_payload(worker)
        assert worker.spans() == []


class TestProcessBackendStitching:
    def test_worker_spans_under_run_span(self):
        tracer = obs.enable_tracing()
        Scheduler(
            _engine(), OutputConfig(kind="null"), workers=2,
            package_size=20, backend="process",
        ).run()
        records = tracer.drain()
        run = next(r for r in records if r.name == "scheduler.run")
        packages = [r for r in records if r.name == "scheduler.package"]
        assert packages, "no worker package spans stitched"
        assert all(r.parent_id == run.span_id for r in packages)
        assert all("pid" in r.attrs for r in packages)
        assert all(r.attrs.get("attempt") == 1 for r in packages)
        generate = [r for r in records if r.name == "package.generate"]
        package_ids = {r.span_id for r in packages}
        assert all(r.parent_id in package_ids for r in generate)

    def test_per_table_totals_match_thread_backend(self):
        def run_with(backend: str):
            tracer = obs.enable_tracing()
            Scheduler(
                _engine(), OutputConfig(kind="null"), workers=2,
                package_size=25, backend=backend,
            ).run()
            totals = table_totals(tracer.drain())
            obs.reset()
            return totals

        assert run_with("process") == run_with("thread")

    def test_deterministic_counters_equal_thread_backend(self):
        def run_with(backend: str):
            registry = obs.enable_metrics()
            Scheduler(
                _engine(), OutputConfig(kind="null"), workers=2,
                package_size=25, backend=backend,
            ).run()
            values = {
                name: _counter_values(registry, name)
                for name in DETERMINISTIC_COUNTERS
            }
            obs.reset()
            return values

        assert run_with("process") == run_with("thread")

    def test_telemetry_off_ships_no_payloads(self):
        report = Scheduler(
            _engine(), OutputConfig(kind="null"), workers=2,
            package_size=25, backend="process",
        ).run()
        assert report.rows == 240
        assert obs.active_tracer() is None


class TestKillRespawnTrace:
    def test_requeued_package_spans_carry_attempt_two(self, tmp_path):
        tracer = obs.enable_tracing()
        plan = FaultPlan(
            kill_worker_at=("orders", 2), latch_dir=str(tmp_path / "latch")
        )
        report = Scheduler(
            _engine(),
            OutputConfig(kind="file", format="csv",
                         directory=str(tmp_path / "out")),
            workers=2, package_size=25, backend="process",
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            faults=plan,
        ).run()
        assert report.worker_restarts == 1
        records = tracer.drain()
        redo = [
            r for r in records
            if r.name == "scheduler.package" and r.attrs.get("attempt") == 2
        ]
        assert redo, "respawned worker's redo spans missing from trace"
        assert any(r.attrs.get("table") == "orders" for r in redo)
        run = next(r for r in records if r.name == "scheduler.run")
        assert all(r.parent_id == run.span_id for r in redo)

    def test_trace_totals_unaffected_by_requeue(self, tmp_path):
        """Redo spans appear, but per-table totals count completed
        packages once (duplicate results are deduplicated downstream of
        stitching — the trace records work done, totals record data)."""
        tracer = obs.enable_tracing()
        plan = FaultPlan(
            kill_worker_at=("orders", 1), latch_dir=str(tmp_path / "latch")
        )
        report = Scheduler(
            _engine(),
            OutputConfig(kind="file", format="csv",
                         directory=str(tmp_path / "out")),
            workers=2, package_size=25, backend="process",
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            faults=plan,
        ).run()
        records = tracer.drain()
        totals = table_totals(records)
        by_table = {t.name: t for t in report.tables}
        # package-stream rows match exactly; bytes exclude header/footer
        # framing, which the report includes
        for name, (rows, _bytes) in totals.items():
            assert rows == by_table[name].rows


class TestMetaSchedulerStitching:
    def test_node_subtraces_under_meta_run(self, tmp_path):
        tracer = obs.enable_tracing()
        registry = obs.enable_metrics()
        MetaScheduler(
            demo_schema(), output=OutputConfig(kind="null"), package_size=30,
        ).run(3)
        records = tracer.drain()
        meta_run = next(r for r in records if r.name == "meta.run")
        nodes = [r for r in records if r.name == "meta.node"]
        assert len(nodes) == 3
        assert all(r.parent_id == meta_run.span_id for r in nodes)
        assert sorted(r.attrs["node"] for r in nodes) == [0, 1, 2]
        node_ids = {r.span_id for r in nodes}
        scheduler_runs = [r for r in records if r.name == "scheduler.run"]
        assert len(scheduler_runs) == 3
        assert all(r.parent_id in node_ids for r in scheduler_runs)
        # node metric deltas merged: cluster rows total equals the model
        rows = _counter_values(registry, "rows_generated_total")
        assert sum(rows.values()) == 240

    def test_sequential_nodes_record_ambient(self):
        tracer = obs.enable_tracing()
        MetaScheduler(
            demo_schema(), output=OutputConfig(kind="null"), package_size=30,
        ).run(2, processes=False)
        records = tracer.drain()
        meta_run = next(r for r in records if r.name == "meta.run")
        nodes = [r for r in records if r.name == "meta.node"]
        assert len(nodes) == 2
        assert all(r.parent_id == meta_run.span_id for r in nodes)
        reports_telemetry = [r for r in records if r.name == "scheduler.run"]
        assert len(reports_telemetry) == 2

    def test_node_reports_carry_no_payload_when_disabled(self):
        cluster = MetaScheduler(
            demo_schema(), output=OutputConfig(kind="null"), package_size=30,
        ).run(2)
        assert all(node.telemetry is None for node in cluster.nodes)


class TestEmergencyTracePreservation:
    def test_partial_trace_written_on_crash(self, tmp_path):
        tracer = obs.enable_tracing()
        ckpt = tmp_path / "ckpt"
        plan = FaultPlan(
            kill_worker_at=("orders", 2), latch_dir=str(tmp_path / "latch")
        )
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError):
            Scheduler(
                _engine(),
                OutputConfig(kind="file", format="csv",
                             directory=str(tmp_path / "out")),
                workers=2, package_size=25, backend="process",
                checkpoint=str(ckpt), faults=plan,
            ).run()
        partial = ckpt / "trace.partial.jsonl"
        assert partial.exists()
        records = obs.read_trace_jsonl(str(partial))
        assert any(r.name == "scheduler.package" for r in records)
        assert tracer is obs.active_tracer()
