"""Tests for query workload generation and virtual execution (§7
future work: consistent query generation + verification results)."""

from __future__ import annotations

import datetime

import pytest

from repro.core.loader import DataLoader
from repro.core.queries import (
    Aggregate,
    Op,
    ParameterSpec,
    Predicate,
    Query,
    QueryParameterGenerator,
    QueryTemplate,
    VirtualExecutor,
)
from repro.core.translator import SchemaTranslator
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.engine import GenerationEngine
from repro.exceptions import GenerationError, ModelError
from repro.model.schema import Field, GeneratorSpec, Schema, Table


def query_schema() -> Schema:
    schema = Schema("qtest", seed=808)
    schema.add_table(Table("sales", "2000", [
        Field.of("s_id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
        Field.of("s_quantity", "INTEGER", GeneratorSpec(
            "IntGenerator", {"min": 1, "max": 100}
        )),
        Field.of("s_price", "DECIMAL(8,2)", GeneratorSpec(
            "DoubleGenerator", {"min": 0.0, "max": 100.0, "places": 2}
        )),
        Field.of("s_region", "VARCHAR(10)", GeneratorSpec(
            "DictListGenerator",
            {"values": ["NORTH", "SOUTH", "EAST", "WEST"],
             "weights": [0.4, 0.3, 0.2, 0.1]},
        )),
        Field.of("s_date", "DATE", GeneratorSpec(
            "DateGenerator", {"min": "2023-01-01", "max": "2023-12-31"}
        )),
        Field.of("s_note", "VARCHAR(30)", GeneratorSpec(
            "NullGenerator", {"probability": 0.25},
            [GeneratorSpec("TextGenerator", {"min": 1, "max": 3})],
        )),
    ]))
    return schema


@pytest.fixture(scope="module")
def schema():
    return query_schema()


@pytest.fixture(scope="module")
def executor(schema):
    return VirtualExecutor(schema)


@pytest.fixture(scope="module")
def database(schema):
    adapter = SQLiteAdapter(":memory:")
    SchemaTranslator().apply(schema, adapter)
    DataLoader(adapter).load(GenerationEngine(schema))
    yield adapter
    adapter.close()


class TestQuerySql:
    def test_simple_count(self):
        query = Query("sales", [Aggregate("count")])
        assert query.to_sql() == "SELECT COUNT(*) FROM sales"

    def test_predicates_rendered(self):
        query = Query("sales", [Aggregate("sum", "s_price")], [
            Predicate("s_quantity", Op.LT, 10),
            Predicate("s_region", Op.EQ, "NORTH"),
            Predicate("s_price", Op.BETWEEN, 1.0, 2.0),
            Predicate("s_note", Op.IS_NULL),
        ])
        sql = query.to_sql()
        assert "s_quantity < 10" in sql
        assert "s_region = 'NORTH'" in sql
        assert "s_price BETWEEN 1.0 AND 2.0" in sql
        assert "s_note IS NULL" in sql

    def test_in_and_quoting(self):
        sql = Query("sales", [Aggregate("count")], [
            Predicate("s_region", Op.IN, ["NO'RTH", "SOUTH"]),
        ]).to_sql()
        assert "IN ('NO''RTH', 'SOUTH')" in sql

    def test_date_literal(self):
        sql = Query("sales", [Aggregate("count")], [
            Predicate("s_date", Op.GE, datetime.date(2023, 6, 1)),
        ]).to_sql()
        assert "s_date >= '2023-06-01'" in sql


class TestExactExecution:
    """The exact path must agree with SQL on a loaded database."""

    @pytest.mark.parametrize("query", [
        Query("sales", [Aggregate("count")]),
        Query("sales", [Aggregate("count")], [Predicate("s_quantity", Op.LE, 50)]),
        Query("sales", [Aggregate("count"), Aggregate("sum", "s_quantity")],
              [Predicate("s_region", Op.EQ, "NORTH")]),
        Query("sales", [Aggregate("avg", "s_price")],
              [Predicate("s_price", Op.BETWEEN, 10.0, 20.0)]),
        Query("sales", [Aggregate("min", "s_quantity"),
                        Aggregate("max", "s_quantity")],
              [Predicate("s_quantity", Op.GT, 90)]),
        Query("sales", [Aggregate("count")], [Predicate("s_note", Op.IS_NULL)]),
        Query("sales", [Aggregate("count")], [Predicate("s_note", Op.NOT_NULL)]),
        Query("sales", [Aggregate("count")],
              [Predicate("s_region", Op.IN, ["EAST", "WEST"])]),
        Query("sales", [Aggregate("count")],
              [Predicate("s_date", Op.GE, datetime.date(2023, 7, 1))]),
    ])
    def test_matches_sql(self, executor, database, query):
        virtual = executor.execute(query)
        sql_row = database.execute(query.to_sql())[0]
        for value, expected in zip(virtual.values(), sql_row):
            if value is None:
                assert expected is None
            else:
                assert value == pytest.approx(expected, rel=1e-9)


class TestAnalyticPrediction:
    """Closed-form predictions land within their own tolerance bands."""

    @pytest.mark.parametrize("query", [
        Query("sales", [Aggregate("count")]),
        Query("sales", [Aggregate("count")], [Predicate("s_quantity", Op.LT, 26)]),
        Query("sales", [Aggregate("count")],
              [Predicate("s_region", Op.EQ, "NORTH")]),
        Query("sales", [Aggregate("count")],
              [Predicate("s_price", Op.BETWEEN, 25.0, 75.0)]),
        Query("sales", [Aggregate("count")], [Predicate("s_note", Op.IS_NULL)]),
        Query("sales", [Aggregate("count"), Aggregate("avg", "s_quantity")],
              [Predicate("s_quantity", Op.BETWEEN, 20, 40)]),
        Query("sales", [Aggregate("sum", "s_price")],
              [Predicate("s_region", Op.IN, ["NORTH", "SOUTH"])]),
        Query("sales", [Aggregate("count")],
              [Predicate("s_date", Op.LT, datetime.date(2023, 4, 1))]),
    ])
    def test_prediction_within_band(self, executor, database, query):
        predictions = executor.predict(query)
        actual_row = database.execute(query.to_sql())[0]
        for (key, predicted), actual in zip(predictions.items(), actual_row):
            assert predicted.value is not None
            if actual in (None, 0):
                continue
            error = abs(predicted.value - actual) / abs(actual)
            assert error <= max(predicted.tolerance, 0.12), (
                f"{key}: predicted {predicted.value}, actual {actual}"
            )

    def test_count_of_whole_table_is_exact(self, executor, schema):
        predicted = executor.predict(Query("sales", [Aggregate("count")]))
        assert predicted["COUNT(*)"].value == schema.table_size("sales")

    def test_min_max_track_predicate_bounds(self, executor):
        predicted = executor.predict(Query(
            "sales",
            [Aggregate("min", "s_quantity"), Aggregate("max", "s_quantity")],
            [Predicate("s_quantity", Op.BETWEEN, 10, 20)],
        ))
        assert predicted["MIN(s_quantity)"].value == 10
        assert predicted["MAX(s_quantity)"].value == 20

    def test_rounding_step_widens_between(self, executor, database):
        # The l_discount-style case: BETWEEN on a 2-places column.
        query = Query("sales", [Aggregate("count")],
                      [Predicate("s_price", Op.EQ, 50.0)])
        predicted = executor.predict(query)["COUNT(*)"]
        # EQ on a rounded double has selectivity step/span = 0.01/100.
        assert predicted.value == pytest.approx(2000 * 0.0001, rel=1e-6)

    def test_unsupported_column_raises(self, executor):
        with pytest.raises(GenerationError):
            executor.predict(Query("sales", [Aggregate("count")],
                                   [Predicate("s_note", Op.EQ, "x")]))

    def test_verification_result_alias(self, executor):
        query = Query("sales", [Aggregate("count")])
        assert executor.verification_result(query) == executor.predict(query)


class TestQueryParameterGenerator:
    TEMPLATE = QueryTemplate(
        "scan",
        "SELECT COUNT(*) FROM sales WHERE s_region = :region "
        "AND s_quantity < :qty AND s_date >= :start",
        [
            ParameterSpec("region", "sales", "s_region", "dictionary"),
            ParameterSpec("qty", "sales", "s_quantity", "numeric"),
            ParameterSpec("start", "sales", "s_date", "date"),
        ],
    )

    def test_deterministic_stream(self, schema):
        a = QueryParameterGenerator(schema).stream(self.TEMPLATE, 10)
        b = QueryParameterGenerator(schema).stream(self.TEMPLATE, 10)
        assert a == b

    def test_instances_differ(self, schema):
        stream = QueryParameterGenerator(schema).stream(self.TEMPLATE, 10)
        assert len(set(stream)) > 1

    def test_parameters_drawn_from_model_domains(self, schema):
        generator = QueryParameterGenerator(schema)
        for index in range(20):
            values = generator.parameters_for(self.TEMPLATE, index)
            assert values["region"] in ("NORTH", "SOUTH", "EAST", "WEST")
            assert 1 <= values["qty"] <= 100
            assert datetime.date(2023, 1, 1) <= values["start"] <= datetime.date(2023, 12, 31)

    def test_generated_queries_run(self, schema, database):
        for sql in QueryParameterGenerator(schema).stream(self.TEMPLATE, 5):
            rows = database.execute(sql)
            assert rows[0][0] >= 0

    def test_seed_changes_parameters(self, schema):
        other = query_schema()
        other.seed = 809
        a = QueryParameterGenerator(schema).stream(self.TEMPLATE, 5)
        b = QueryParameterGenerator(other).stream(self.TEMPLATE, 5)
        assert a != b

    def test_unknown_placeholder_rejected(self, schema):
        template = QueryTemplate(
            "bad", "SELECT :ghost", [ParameterSpec("x", "sales", "s_quantity", "numeric")]
        )
        with pytest.raises(ModelError, match="no parameter"):
            QueryParameterGenerator(schema).instantiate(template, 0)

    def test_bad_parameter_kind(self, schema):
        template = QueryTemplate(
            "bad2", "SELECT :x",
            [ParameterSpec("x", "sales", "s_quantity", "gaussian")],
        )
        with pytest.raises(ModelError, match="unknown parameter kind"):
            QueryParameterGenerator(schema).instantiate(template, 0)

    def test_dictionary_param_on_numeric_column_rejected(self, schema):
        template = QueryTemplate(
            "bad3", "SELECT :x",
            [ParameterSpec("x", "sales", "s_quantity", "dictionary")],
        )
        with pytest.raises(ModelError, match="no dictionary"):
            QueryParameterGenerator(schema).instantiate(template, 0)


def duplicate_value_schema() -> Schema:
    """A dictionary column carrying the same value in several entries."""
    schema = Schema("dups", seed=77)
    schema.add_table(Table("t", "1000", [
        Field.of("d_id", "BIGINT", GeneratorSpec("IdGenerator"), primary=True),
        Field.of("d_tag", "VARCHAR(8)", GeneratorSpec(
            "DictListGenerator",
            {"values": ["HOT", "HOT", "COLD", "WARM"],
             "weights": [0.3, 0.3, 0.3, 0.1]},
        )),
    ]))
    return schema


class TestDictionarySelectivity:
    """EQ/IN mass must sum over duplicate dictionary entries."""

    def test_eq_sums_duplicate_entries(self):
        executor = VirtualExecutor(duplicate_value_schema())
        predicted = executor.predict(Query(
            "t", [Aggregate("count")], [Predicate("d_tag", Op.EQ, "HOT")]
        ))
        assert predicted["COUNT(*)"].value == pytest.approx(600.0)

    def test_in_counts_each_value_once(self):
        executor = VirtualExecutor(duplicate_value_schema())
        predicted = executor.predict(Query(
            "t", [Aggregate("count")],
            [Predicate("d_tag", Op.IN, ["HOT", "HOT", "COLD"])],
        ))
        assert predicted["COUNT(*)"].value == pytest.approx(900.0)

    def test_prediction_matches_loaded_database(self):
        schema = duplicate_value_schema()
        with SQLiteAdapter(":memory:") as adapter:
            SchemaTranslator().apply(schema, adapter)
            DataLoader(adapter).load(GenerationEngine(schema))
            actual = adapter.execute(
                "SELECT COUNT(*) FROM t WHERE d_tag = 'HOT'"
            )[0][0]
        predicted = VirtualExecutor(schema).predict(Query(
            "t", [Aggregate("count")], [Predicate("d_tag", Op.EQ, "HOT")]
        ))["COUNT(*)"]
        assert abs(predicted.value - actual) / actual <= 0.12


class TestInPredicateSemantics:
    """IN requires a collection and compares elementwise, never substrings."""

    def test_string_value_rejected_in_exact_path(self, executor):
        with pytest.raises(GenerationError, match="requires a collection"):
            executor.execute(Query(
                "sales", [Aggregate("count")],
                [Predicate("s_region", Op.IN, "NORTHEAST")],
            ))

    def test_string_value_rejected_in_prediction(self, executor):
        with pytest.raises(GenerationError, match="requires a collection"):
            executor.predict(Query(
                "sales", [Aggregate("count")],
                [Predicate("s_region", Op.IN, "NORTH")],
            ))

    def test_scalar_value_rejected(self, executor):
        with pytest.raises(GenerationError, match="requires a collection"):
            executor.execute(Query(
                "sales", [Aggregate("count")],
                [Predicate("s_quantity", Op.IN, 5)],
            ))

    def test_elementwise_numeric_membership(self, executor, database):
        query = Query("sales", [Aggregate("count")],
                      [Predicate("s_quantity", Op.IN, [7, 13, 13])])
        virtual = executor.execute(query)
        actual = database.execute(query.to_sql())[0][0]
        assert virtual["COUNT(*)"] == actual

    def test_no_substring_containment(self, executor):
        # "EAST" is a substring member of "NORTHEAST"; elementwise EQ
        # semantics must not count it.
        exact = executor.execute(Query(
            "sales", [Aggregate("count")],
            [Predicate("s_region", Op.IN, ["NORTHEAST"])],
        ))
        assert exact["COUNT(*)"] == 0
