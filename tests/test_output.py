"""Tests for the output system: formatting, writers, sinks, ordering."""

from __future__ import annotations

import datetime
import json
import os
import sqlite3
import threading
import xml.etree.ElementTree as ET

import pytest

from repro.exceptions import OutputError
from repro.output.config import OutputConfig
from repro.output.rows import ValueFormatter
from repro.output.sinks import (
    CallbackSink,
    FileSink,
    InFlightWindow,
    MemorySink,
    NullSink,
    OrderedSinkMux,
    Sink,
    SQLiteSink,
)
from repro.output.writers import (
    CsvWriter,
    JsonWriter,
    SqlWriter,
    XmlWriter,
    writer_for,
)


class TestValueFormatter:
    def test_null_token(self):
        assert ValueFormatter(null_token="NULL").format(None) == "NULL"
        assert ValueFormatter().format(None) == ""

    def test_strings_pass_through(self):
        assert ValueFormatter().format("abc") == "abc"

    def test_integers(self):
        assert ValueFormatter().format(42) == "42"

    def test_booleans(self):
        fmt = ValueFormatter()
        assert fmt.format(True) == "true"
        assert fmt.format(False) == "false"

    def test_floats_default_repr(self):
        assert ValueFormatter().format(2.5) == "2.5"

    def test_float_places(self):
        assert ValueFormatter(float_places=2).format(2.5) == "2.50"

    def test_date_default_iso(self):
        assert ValueFormatter().format(datetime.date(2014, 11, 30)) == "2014-11-30"

    def test_date_paper_format(self):
        # The paper's Figure 9 example: "11/30/2014".
        fmt = ValueFormatter(date_format="%m/%d/%Y")
        assert fmt.format(datetime.date(2014, 11, 30)) == "11/30/2014"

    def test_timestamp(self):
        fmt = ValueFormatter()
        value = datetime.datetime(2014, 11, 30, 12, 34, 56)
        assert fmt.format(value) == "2014-11-30 12:34:56"

    def test_bytes_hex(self):
        assert ValueFormatter().format(b"\x01\x02") == "0102"

    def test_lazy_cache_hit(self):
        fmt = ValueFormatter()
        day = datetime.date(2020, 1, 1)
        fmt.format(day)
        assert fmt.cache_size == 1
        fmt.format(day)
        assert fmt.cache_size == 1

    def test_cache_limit_respected(self):
        fmt = ValueFormatter(cache_limit=3)
        for ordinal in range(10):
            fmt.format(datetime.date.fromordinal(730000 + ordinal))
        assert fmt.cache_size == 3


class TestCsvWriter:
    def test_row(self):
        writer = CsvWriter("t", ["a", "b"])
        assert writer.write_row([1, "x"]) == "1|x\n"

    def test_header_optional(self):
        assert CsvWriter("t", ["a", "b"]).header() == ""
        assert CsvWriter("t", ["a", "b"], include_header=True).header() == "a|b\n"

    def test_delimiter_escaping(self):
        writer = CsvWriter("t", ["a"])
        assert writer.write_row(["x|y"]) == '"x|y"\n'

    def test_quote_doubling(self):
        writer = CsvWriter("t", ["a"], delimiter=",")
        assert writer.write_row(['say "hi", now']) == '"say ""hi"", now"\n'

    def test_custom_delimiter(self):
        writer = CsvWriter("t", ["a", "b"], delimiter=",")
        assert writer.write_row([1, 2]) == "1,2\n"

    def test_rejects_multichar_delimiter(self):
        with pytest.raises(OutputError):
            CsvWriter("t", ["a"], delimiter="||")

    def test_null_empty(self):
        writer = CsvWriter("t", ["a", "b"])
        assert writer.write_row([None, 1]) == "|1\n"


class TestJsonWriter:
    def test_row_is_json_object(self):
        writer = JsonWriter("t", ["id", "name"])
        obj = json.loads(writer.write_row([1, "ann"]))
        assert obj == {"id": 1, "name": "ann"}

    def test_null_and_bool(self):
        writer = JsonWriter("t", ["a", "b"])
        obj = json.loads(writer.write_row([None, True]))
        assert obj == {"a": None, "b": True}

    def test_dates_formatted(self):
        writer = JsonWriter("t", ["d"])
        obj = json.loads(writer.write_row([datetime.date(2020, 5, 4)]))
        assert obj == {"d": "2020-05-04"}


class TestXmlWriter:
    def test_document_well_formed(self):
        writer = XmlWriter("t", ["a", "b"])
        document = writer.header() + writer.write_row([1, "x<y"]) + writer.footer()
        root = ET.fromstring(document)
        assert root.tag == "table"
        assert root.get("name") == "t"
        row = root.find("row")
        assert row.find("a").text == "1"
        assert row.find("b").text == "x<y"

    def test_null_as_empty_element(self):
        writer = XmlWriter("t", ["a"])
        assert "<a/>" in writer.write_row([None])

    def test_escaping(self):
        writer = XmlWriter("t", ["a"])
        assert "&amp;" in writer.write_row(["x&y"])


class TestSqlWriter:
    def test_insert_statement(self):
        writer = SqlWriter("t", ["id", "name"])
        statement = writer.write_row([1, "ann"])
        assert statement == "INSERT INTO t (id, name) VALUES (1, 'ann');\n"

    def test_quote_escaping(self):
        writer = SqlWriter("t", ["name"])
        assert "('o''brien')" in writer.write_row(["o'brien"])

    def test_null_and_bool(self):
        writer = SqlWriter("t", ["a", "b"])
        assert "(NULL, TRUE)" in writer.write_row([None, True])

    def test_executes_in_sqlite(self):
        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE t (id INTEGER, name TEXT)")
        writer = SqlWriter("t", ["id", "name"])
        conn.executescript(writer.write_row([5, "it's"]))
        assert conn.execute("SELECT name FROM t").fetchone()[0] == "it's"


class TestWriterRegistry:
    def test_lookup(self):
        assert writer_for("csv") is CsvWriter
        assert writer_for("JSON") is JsonWriter

    def test_unknown(self):
        with pytest.raises(OutputError, match="unknown output format"):
            writer_for("feather")

    def test_binary_formats_resolve(self):
        from repro.output.arrow import ArrowWriter

        assert writer_for("arrow") is ArrowWriter
        assert writer_for("parquet") is ArrowWriter


class TestSinks:
    def test_null_sink_counts(self):
        sink = NullSink()
        sink.write("abcd")
        assert sink.bytes_written == 4

    def test_memory_sink(self):
        sink = MemorySink()
        sink.write("a")
        sink.write("b")
        assert sink.getvalue() == "ab"

    def test_file_sink(self, tmp_path):
        path = str(tmp_path / "sub" / "out.tbl")
        with FileSink(path) as sink:
            sink.write("hello\n")
        with open(path) as handle:
            assert handle.read() == "hello\n"

    def test_file_sink_write_after_close(self, tmp_path):
        sink = FileSink(str(tmp_path / "x"))
        sink.close()
        with pytest.raises(OutputError):
            sink.write("late")

    def test_callback_sink(self):
        chunks = []
        sink = CallbackSink(chunks.append)
        sink.write("x")
        assert chunks == ["x"]

    def test_sqlite_sink(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        with SQLiteSink(path) as sink:
            sink.write("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1);")
        conn = sqlite3.connect(path)
        assert conn.execute("SELECT x FROM t").fetchone() == (1,)

    def test_sqlite_sink_bad_sql(self, tmp_path):
        with SQLiteSink(str(tmp_path / "db2.sqlite")) as sink:
            with pytest.raises(OutputError):
                sink.write("NOT SQL AT ALL;")

    def test_sqlite_sink_concurrent_writers_count_bytes(self, tmp_path):
        # Several muxes can share one database sink; ``bytes_written``
        # must be updated inside the sink's lock or concurrent ``+=``
        # increments get lost.
        with SQLiteSink(str(tmp_path / "db3.sqlite")) as sink:
            sink.write("CREATE TABLE t (x INTEGER);")
            base = sink.bytes_written
            chunk = "INSERT INTO t VALUES (1);"
            writes_per_thread = 50

            def hammer():
                for _ in range(writes_per_thread):
                    sink.write(chunk)

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sink.bytes_written - base == 8 * writes_per_thread * len(chunk)


class TestOrderedSinkMux:
    def test_in_order_passthrough(self):
        sink = MemorySink()
        mux = OrderedSinkMux(sink)
        mux.submit(0, "a")
        mux.submit(1, "b")
        assert sink.getvalue() == "ab"

    def test_out_of_order_buffered(self):
        sink = MemorySink()
        mux = OrderedSinkMux(sink)
        mux.submit(2, "c")
        mux.submit(0, "a")
        assert sink.getvalue() == "a"
        mux.submit(1, "b")
        assert sink.getvalue() == "abc"
        mux.finish()

    def test_duplicate_rejected(self):
        mux = OrderedSinkMux(MemorySink())
        mux.submit(0, "a")
        with pytest.raises(OutputError, match="duplicate"):
            mux.submit(0, "again")

    def test_finish_detects_gap(self):
        mux = OrderedSinkMux(MemorySink())
        mux.submit(1, "b")
        with pytest.raises(OutputError, match="never arrived"):
            mux.finish()

    def test_stale_sequence_rejected(self):
        mux = OrderedSinkMux(MemorySink())
        mux.submit(0, "a")
        mux.submit(1, "b")
        with pytest.raises(OutputError, match="duplicate"):
            mux.submit(0, "late replay")

    def test_max_pending_watermark(self):
        mux = OrderedSinkMux(MemorySink())
        mux.submit(3, "d")
        mux.submit(2, "c")
        mux.submit(1, "b")
        assert mux.max_pending == 3
        mux.submit(0, "a")  # flushes all four
        mux.finish()
        assert mux.max_pending == 4


class _FlakySink(Sink):
    """Raises OutputError on the Nth write (disk-full simulation)."""

    def __init__(self, fail_on_call: int) -> None:
        super().__init__()
        self.calls = 0
        self.fail_on_call = fail_on_call
        self.written: list[str] = []

    def write(self, chunk: str) -> None:
        self.calls += 1
        if self.calls == self.fail_on_call:
            raise OutputError("disk full")
        self.written.append(chunk)
        self.bytes_written += len(chunk)


class TestOrderedSinkMuxFailure:
    """A sink failure must surface as the original error, not as a
    misleading duplicate/never-arrived complaint on later packages."""

    def test_original_error_propagates(self):
        mux = OrderedSinkMux(_FlakySink(fail_on_call=1))
        with pytest.raises(OutputError, match="disk full"):
            mux.submit(0, "a")

    def test_later_submits_reraise_first_failure(self):
        mux = OrderedSinkMux(_FlakySink(fail_on_call=1))
        with pytest.raises(OutputError, match="disk full"):
            mux.submit(0, "a")
        # Without failure recording this raised "duplicate work package".
        with pytest.raises(OutputError, match="disk full"):
            mux.submit(1, "b")

    def test_finish_reraises_first_failure(self):
        mux = OrderedSinkMux(_FlakySink(fail_on_call=1))
        with pytest.raises(OutputError, match="disk full"):
            mux.submit(0, "a")
        # Without failure recording this raised "never arrived".
        with pytest.raises(OutputError, match="disk full"):
            mux.finish()

    def test_failure_mid_flush_keeps_timing_and_counts(self):
        sink = _FlakySink(fail_on_call=2)
        mux = OrderedSinkMux(sink)
        mux.submit(1, "b")
        with pytest.raises(OutputError, match="disk full"):
            mux.submit(0, "a")  # flushes "a", dies on "b"
        assert sink.written == ["a"]
        assert mux.flushes == 1  # the successful write is still counted
        assert mux.write_seconds > 0  # elapsed time not lost on raise

    def test_window_slots_released_for_flushed_chunks_on_failure(self):
        window = InFlightWindow(4)
        sink = _FlakySink(fail_on_call=2)
        mux = OrderedSinkMux(sink, window=window)
        assert window.acquire() and window.acquire()
        with pytest.raises(OutputError, match="disk full"):
            mux.submit(1, "b")
            mux.submit(0, "a")
        # "a" flushed -> one slot back; "b" died holding its slot.
        assert window.in_flight == 1


class TestInFlightWindow:
    def test_limit_enforced(self):
        window = InFlightWindow(2)
        assert window.acquire()
        assert window.acquire()
        assert not window.try_acquire()
        window.release()
        assert window.try_acquire()
        assert window.max_in_flight == 2

    def test_release_clamps_at_limit(self):
        window = InFlightWindow(2)
        window.release(5)
        assert window.in_flight == 0
        assert window.acquire()
        assert window.in_flight == 1

    def test_abort_wakes_blocked_acquirer(self):
        window = InFlightWindow(1)
        assert window.acquire()
        results: list[bool] = []
        waiter = threading.Thread(target=lambda: results.append(window.acquire()))
        waiter.start()
        window.abort()
        waiter.join(timeout=5)
        assert not waiter.is_alive()
        assert results == [False]
        assert not window.try_acquire()

    def test_invalid_limit(self):
        with pytest.raises(OutputError):
            InFlightWindow(0)

    def test_mux_releases_on_flush(self):
        window = InFlightWindow(3)
        mux = OrderedSinkMux(MemorySink(), window=window)
        for _ in range(3):
            assert window.acquire()
        mux.submit(2, "c")  # buffered: no release
        assert window.in_flight == 3
        mux.submit(0, "a")  # flushes just "a"
        assert window.in_flight == 2
        mux.submit(1, "b")  # flushes "b" then the buffered "c"
        assert window.in_flight == 0
        assert mux.max_pending <= window.limit


class TestOutputConfig:
    def test_validates_kind(self):
        with pytest.raises(OutputError):
            OutputConfig(kind="ftp")

    def test_validates_format(self):
        with pytest.raises(OutputError):
            OutputConfig(format="avro")

    def test_sqlite_requires_sql_format(self):
        with pytest.raises(OutputError):
            OutputConfig(kind="sqlite", format="csv")

    def test_table_path_extension(self, tmp_path):
        config = OutputConfig(kind="file", format="csv", directory=str(tmp_path))
        assert config.table_path("orders").endswith(os.path.join(str(tmp_path), "orders.tbl"))
        config_json = OutputConfig(kind="file", format="json", directory=str(tmp_path))
        assert config_json.table_path("orders").endswith("orders.json")

    def test_memory_output_requires_run(self):
        config = OutputConfig(kind="memory")
        with pytest.raises(OutputError):
            config.memory_output("t")

    def test_new_writer_respects_delimiter(self):
        config = OutputConfig(kind="null", format="csv", delimiter=",")
        writer = config.new_writer("t", ["a", "b"])
        assert writer.write_row([1, 2]) == "1,2\n"


class TestGzipFileSink:
    def test_round_trip(self, tmp_path):
        import gzip

        from repro.output.sinks import GzipFileSink

        path = str(tmp_path / "data.tbl.gz")
        with GzipFileSink(path) as sink:
            sink.write("hello|world\n")
            sink.write("more|rows\n")
        assert sink.bytes_written == 22  # uncompressed count
        with gzip.open(path, "rt") as handle:
            assert handle.read() == "hello|world\nmore|rows\n"

    def test_write_after_close(self, tmp_path):
        from repro.output.sinks import GzipFileSink

        sink = GzipFileSink(str(tmp_path / "x.gz"))
        sink.close()
        with pytest.raises(OutputError):
            sink.write("late")

    def test_config_kind_gzip(self, tmp_path):
        import gzip

        from repro.engine import GenerationEngine
        from repro.scheduler import generate
        from tests.conftest import demo_schema

        config = OutputConfig(kind="gzip", format="csv", directory=str(tmp_path))
        generate(GenerationEngine(demo_schema()), config, workers=2)
        with gzip.open(config.table_path("orders") + ".gz", "rt") as handle:
            assert len(handle.read().splitlines()) == 180

    def test_compressed_output_matches_plain(self, tmp_path):
        import gzip

        from repro.engine import GenerationEngine
        from repro.scheduler import generate
        from tests.conftest import demo_schema

        gz_config = OutputConfig(kind="gzip", format="csv",
                                 directory=str(tmp_path / "gz"))
        generate(GenerationEngine(demo_schema()), gz_config)
        plain_config = OutputConfig(kind="file", format="csv",
                                    directory=str(tmp_path / "plain"))
        generate(GenerationEngine(demo_schema()), plain_config)
        with gzip.open(gz_config.table_path("customer") + ".gz", "rt") as handle:
            compressed = handle.read()
        with open(plain_config.table_path("customer")) as handle:
            assert handle.read() == compressed
