"""Tests for the column-name rule engine (paper §3)."""

from __future__ import annotations

from repro.core.rules import NameRule, RuleEngine, default_rules
from repro.model.datatypes import TypeFamily
from repro.model.schema import GeneratorSpec


class TestDefaultRules:
    def setup_method(self):
        self.engine = RuleEngine()

    def _generator(self, column: str, family=TypeFamily.TEXT):
        spec = self.engine.match(column, family)
        return spec.name if spec else None

    def test_paper_example_key_and_id(self):
        # "numeric columns with name key or id will be generated with an
        # ID generator" (paper §3).
        assert self._generator("l_orderkey", TypeFamily.INTEGER) == "IdGenerator"
        assert self._generator("customer_id", TypeFamily.INTEGER) == "IdGenerator"
        assert self._generator("id", TypeFamily.INTEGER) == "IdGenerator"
        assert self._generator("key", TypeFamily.INTEGER) == "IdGenerator"

    def test_id_rule_requires_numeric_type(self):
        assert self._generator("id", TypeFamily.TEXT) != "IdGenerator"

    def test_email(self):
        assert self._generator("email") == "EmailGenerator"
        assert self._generator("contact_mail") == "EmailGenerator"

    def test_url(self):
        assert self._generator("homepage_url") == "UrlGenerator"
        assert self._generator("website") == "UrlGenerator"

    def test_phone(self):
        assert self._generator("phone") == "PhoneGenerator"
        assert self._generator("fax_number") == "PhoneGenerator"

    def test_address(self):
        assert self._generator("s_address") == "AddressGenerator"
        assert self._generator("street") == "AddressGenerator"

    def test_city_country(self):
        assert self._generator("city") == "CityGenerator"
        assert self._generator("home_town") == "CityGenerator"
        assert self._generator("country") == "CountryGenerator"
        assert self._generator("nation_name") == "CountryGenerator"

    def test_person_name(self):
        assert self._generator("first_name") == "PersonNameGenerator"
        assert self._generator("customer_name") == "PersonNameGenerator"
        assert self._generator("name") == "PersonNameGenerator"

    def test_company(self):
        assert self._generator("supplier") == "CompanyNameGenerator"
        assert self._generator("brand") == "CompanyNameGenerator"

    def test_comment_text(self):
        assert self._generator("l_comment") == "TextGenerator"
        assert self._generator("description") == "TextGenerator"
        assert self._generator("review_text") == "TextGenerator"
        assert self._generator("plot") == "TextGenerator"

    def test_no_match(self):
        assert self.engine.match("xyzzy", TypeFamily.TEXT) is None

    def test_case_insensitive(self):
        assert self._generator("EMAIL") == "EmailGenerator"

    def test_specificity_order(self):
        # "nation_key" is numeric → id beats country.
        assert self._generator("nation_key", TypeFamily.INTEGER) == "IdGenerator"


class TestCustomRules:
    def test_prepend_takes_priority(self):
        engine = RuleEngine()
        engine.prepend(NameRule(
            "custom-email",
            r"email",
            lambda: GeneratorSpec("RandomStringGenerator"),
            families=(TypeFamily.TEXT,),
        ))
        spec = engine.match("email", TypeFamily.TEXT)
        assert spec.name == "RandomStringGenerator"

    def test_rule_names_listing(self):
        names = RuleEngine().rule_names()
        assert names[0] == "id-key"
        assert "comment-text" in names

    def test_empty_rule_set(self):
        engine = RuleEngine(rules=[])
        assert engine.match("email", TypeFamily.TEXT) is None

    def test_family_restriction(self):
        rule = NameRule(
            "text-only", r"foo", lambda: GeneratorSpec("TextGenerator"),
            families=(TypeFamily.TEXT,),
        )
        assert rule.matches("foo", TypeFamily.TEXT)
        assert not rule.matches("foo", TypeFamily.INTEGER)

    def test_unrestricted_family(self):
        rule = NameRule("any", r"foo", lambda: GeneratorSpec("TextGenerator"))
        assert rule.matches("foo", None)
        assert rule.matches("foo", TypeFamily.DATE)

    def test_fresh_spec_per_match(self):
        # Each match must build a new spec (params are mutated downstream).
        engine = RuleEngine()
        a = engine.match("email", TypeFamily.TEXT)
        b = engine.match("email", TypeFamily.TEXT)
        assert a is not b

    def test_default_rules_returns_fresh_list(self):
        rules = default_rules()
        rules.clear()
        assert default_rules()
