"""Deprecation shims: positional scheduler config and repro.metrics.

The 1.1 API makes scheduler configuration keyword-only and moves the
timing helpers into ``repro.obs``. Old call forms keep working for one
release cycle but must warn; these are the only tests allowed to use
them.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import pytest

from repro.engine import GenerationEngine
from repro.output.config import OutputConfig
from repro.scheduler import Scheduler, generate

from tests.conftest import demo_schema


@pytest.fixture
def engine() -> GenerationEngine:
    return GenerationEngine(demo_schema())


class TestSchedulerKeywordOnly:
    def test_positional_config_warns_and_works(self, engine):
        with pytest.warns(DeprecationWarning, match="Scheduler configuration"):
            scheduler = Scheduler(engine, OutputConfig(kind="null"), 2, 50)
        assert scheduler.workers == 2
        assert scheduler.package_size == 50
        report = scheduler.run()
        assert report.rows == engine.total_rows()

    def test_full_positional_order(self, engine):
        with pytest.warns(DeprecationWarning):
            scheduler = Scheduler(
                engine, OutputConfig(kind="null"), 3, 40, None, "thread", 4
            )
        assert scheduler.workers == 3
        assert scheduler.backend == "thread"
        assert scheduler.inflight_extra == 4

    def test_keyword_form_is_clean(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            scheduler = Scheduler(
                engine, OutputConfig(kind="null"), workers=2, package_size=50,
                backend="thread", inflight_extra=3,
            )
        assert scheduler.workers == 2

    def test_positional_plus_keyword_conflict(self, engine):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                Scheduler(engine, OutputConfig(kind="null"), 2, workers=3)

    def test_too_many_positionals(self, engine):
        with pytest.raises(TypeError, match="at most"):
            Scheduler(engine, OutputConfig(kind="null"), 2, 50, None, "thread", 3, 99)


class TestGenerateKeywordOnly:
    def test_positional_config_warns_and_works(self, engine):
        with pytest.warns(DeprecationWarning, match="generate configuration"):
            report = generate(engine, OutputConfig(kind="null"), 2, 50)
        assert report.rows == engine.total_rows()

    def test_positional_tables_selection(self, engine):
        with pytest.warns(DeprecationWarning):
            report = generate(engine, OutputConfig(kind="null"), 1, 50, ["customer"])
        assert report.rows == engine.sizes["customer"]

    def test_keyword_form_is_clean(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = generate(
                engine, OutputConfig(kind="null"), workers=1, tables=["customer"]
            )
        assert report.rows == engine.sizes["customer"]


class TestMetricsModuleShim:
    def test_import_warns_and_reexports(self):
        sys.modules.pop("repro.metrics", None)
        with pytest.warns(DeprecationWarning, match="repro.metrics is deprecated"):
            legacy = importlib.import_module("repro.metrics")
        from repro import obs

        assert legacy.throughput_mb_per_s is obs.throughput_mb_per_s
        assert legacy.per_value_latency is obs.per_value_latency
        assert legacy.Timer is obs.Timer

    def test_obs_import_is_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.obs import throughput_mb_per_s  # noqa: F401
