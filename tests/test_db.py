"""Tests for the database substrate: SQLite adapter and DDL builder."""

from __future__ import annotations

import pytest

from repro.db.adapter import ColumnInfo
from repro.db.ddl import create_schema_sql, create_table_sql, render_type
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.exceptions import AdapterError, ModelError
from repro.model.datatypes import parse_type
from tests.conftest import demo_schema


@pytest.fixture
def adapter() -> SQLiteAdapter:
    db = SQLiteAdapter(":memory:")
    db.execute_script(
        """
        CREATE TABLE dept (
          dept_id INTEGER NOT NULL PRIMARY KEY,
          dept_name VARCHAR(30) NOT NULL
        );
        CREATE TABLE emp (
          emp_id INTEGER NOT NULL PRIMARY KEY,
          name VARCHAR(50) NOT NULL,
          salary DECIMAL(10,2),
          dept_id INTEGER REFERENCES dept (dept_id),
          note TEXT
        );
        INSERT INTO dept VALUES (1, 'eng'), (2, 'sales');
        INSERT INTO emp VALUES
          (1, 'ann', 100.5, 1, 'works on compilers'),
          (2, 'bob', 90.25, 1, NULL),
          (3, 'cyd', 120.75, 2, 'top seller'),
          (4, 'dee', NULL, 2, NULL);
        """
    )
    yield db
    db.close()


class TestCatalog:
    def test_table_names(self, adapter):
        assert adapter.table_names() == ["dept", "emp"]

    def test_columns(self, adapter):
        columns = adapter.columns("emp")
        names = [c.name for c in columns]
        assert names == ["emp_id", "name", "salary", "dept_id", "note"]
        emp_id = columns[0]
        assert emp_id.primary
        assert not emp_id.nullable
        salary = columns[2]
        assert salary.nullable
        assert parse_type(salary.type_text).scale == 2

    def test_columns_of_missing_table(self, adapter):
        with pytest.raises(AdapterError, match="no such table"):
            adapter.columns("ghost")

    def test_foreign_keys(self, adapter):
        keys = adapter.foreign_keys("emp")
        assert len(keys) == 1
        assert keys[0].column == "dept_id"
        assert keys[0].ref_table == "dept"
        assert keys[0].ref_column == "dept_id"

    def test_foreign_keys_shorthand_resolved(self):
        db = SQLiteAdapter(":memory:")
        db.execute_script(
            "CREATE TABLE a (id INTEGER PRIMARY KEY);"
            "CREATE TABLE b (x INTEGER, a_ref INTEGER REFERENCES a);"
        )
        keys = db.foreign_keys("b")
        assert keys[0].ref_column == "id"
        db.close()

    def test_invalid_identifier_rejected(self, adapter):
        with pytest.raises(AdapterError, match="invalid identifier"):
            adapter.columns("x; DROP TABLE emp")


class TestStatistics:
    def test_row_count(self, adapter):
        assert adapter.row_count("emp") == 4

    def test_min_max(self, adapter):
        assert adapter.min_max("emp", "salary") == (90.25, 120.75)

    def test_min_max_all_null(self, adapter):
        adapter.execute_script("CREATE TABLE n (x INTEGER); INSERT INTO n VALUES (NULL);")
        assert adapter.min_max("n", "x") == (None, None)

    def test_null_fraction(self, adapter):
        assert adapter.null_fraction("emp", "salary") == 0.25
        assert adapter.null_fraction("emp", "note") == 0.5
        assert adapter.null_fraction("emp", "name") == 0.0

    def test_null_fraction_empty_table(self, adapter):
        adapter.execute_script("CREATE TABLE empty (x INTEGER);")
        assert adapter.null_fraction("empty", "x") == 0.0

    def test_distinct_count(self, adapter):
        assert adapter.distinct_count("emp", "dept_id") == 2

    def test_histogram(self, adapter):
        histogram = adapter.histogram("emp", "dept_id")
        assert histogram == [(1, 2), (2, 2)]

    def test_histogram_respects_buckets(self, adapter):
        assert len(adapter.histogram("emp", "name", buckets=2)) == 2


class TestSampling:
    def test_full_sample(self, adapter):
        values = adapter.sample_column("emp", "note", fraction=1.0)
        assert sorted(values) == ["top seller", "works on compilers"]

    def test_first_strategy(self, adapter):
        values = adapter.sample_column("emp", "name", fraction=0.5, strategy="first")
        assert values == ["ann", "bob"]

    def test_systematic_strategy(self, adapter):
        values = adapter.sample_column(
            "emp", "name", fraction=0.5, strategy="systematic"
        )
        assert len(values) == 2

    def test_bernoulli_fraction_bounds(self, adapter):
        with pytest.raises(AdapterError):
            adapter.sample_column("emp", "name", fraction=0.0)
        with pytest.raises(AdapterError):
            adapter.sample_column("emp", "name", fraction=1.5)

    def test_unknown_strategy(self, adapter):
        with pytest.raises(AdapterError, match="unknown sampling strategy"):
            adapter.sample_column("emp", "name", strategy="magic")


class TestExecution:
    def test_execute_with_parameters(self, adapter):
        rows = adapter.execute("SELECT name FROM emp WHERE salary > ?", (95,))
        assert {r[0] for r in rows} == {"ann", "cyd"}

    def test_execute_error_wrapped(self, adapter):
        with pytest.raises(AdapterError, match="query failed"):
            adapter.execute("SELECT * FROM nowhere")

    def test_insert_rows(self, adapter):
        inserted = adapter.insert_rows(
            "dept", ["dept_id", "dept_name"], [(3, "hr"), (4, "ops")]
        )
        assert inserted == 2
        assert adapter.row_count("dept") == 4

    def test_insert_rows_error(self, adapter):
        with pytest.raises(AdapterError, match="bulk load"):
            adapter.insert_rows("dept", ["dept_id", "dept_name"], [(1, "dupe")])

    def test_script_error(self, adapter):
        with pytest.raises(AdapterError, match="script failed"):
            adapter.execute_script("CREATE BANANA;")

    def test_cannot_open_bad_path(self):
        with pytest.raises(AdapterError):
            SQLiteAdapter("/nonexistent-dir-xyz/db.sqlite")

    def test_context_manager(self):
        with SQLiteAdapter(":memory:") as db:
            db.execute_script("CREATE TABLE t (x INTEGER);")
            assert db.table_names() == ["t"]


class TestRenderType:
    def test_ansi_passthrough(self):
        assert render_type(parse_type("VARCHAR(10)")) == "VARCHAR(10)"

    def test_sqlite_overrides(self):
        assert render_type(parse_type("BOOLEAN"), "sqlite") == "INTEGER"
        assert render_type(parse_type("DATE"), "sqlite") == "TEXT"
        assert render_type(parse_type("DECIMAL(10,2)"), "sqlite") == "REAL"

    def test_mysql_overrides(self):
        assert render_type(parse_type("TEXT"), "mysql") == "LONGTEXT"

    def test_postgres_overrides(self):
        assert render_type(parse_type("BLOB"), "postgres") == "BYTEA"

    def test_unknown_dialect(self):
        with pytest.raises(ModelError):
            render_type(parse_type("TEXT"), "oracle")


class TestCreateTableSql:
    def test_columns_and_pk(self, schema):
        sql = create_table_sql(schema.table_by_name("customer"))
        assert "CREATE TABLE customer" in sql
        assert "c_id BIGINT NOT NULL" not in sql  # nullable defaults to true
        assert "PRIMARY KEY (c_id)" in sql

    def test_foreign_keys_emitted(self, schema):
        sql = create_table_sql(schema.table_by_name("orders"))
        assert "FOREIGN KEY (o_cust) REFERENCES customer (c_id)" in sql

    def test_foreign_keys_can_be_suppressed(self, schema):
        sql = create_table_sql(
            schema.table_by_name("orders"), include_foreign_keys=False
        )
        assert "FOREIGN KEY" not in sql

    def test_composite_primary_key(self):
        from repro.suites.tpch import tpch_schema

        sql = create_table_sql(tpch_schema(0.001).table_by_name("partsupp"))
        assert "PRIMARY KEY (ps_partkey, ps_suppkey)" in sql


class TestCreateSchemaSql:
    def test_dependency_order(self, schema):
        sql = create_schema_sql(schema)
        assert sql.index("CREATE TABLE customer") < sql.index("CREATE TABLE orders")

    def test_executes_on_sqlite(self, schema):
        db = SQLiteAdapter(":memory:")
        db.execute_script(create_schema_sql(schema, "sqlite"))
        assert db.table_names() == ["customer", "orders"]
        db.close()

    def test_tpch_executes_on_sqlite(self):
        from repro.suites.tpch import tpch_schema

        db = SQLiteAdapter(":memory:")
        db.execute_script(create_schema_sql(tpch_schema(0.001), "sqlite"))
        assert len(db.table_names()) == 8
        db.close()


def test_column_info_frozen():
    info = ColumnInfo("x", "TEXT", True, False, 0)
    with pytest.raises(AttributeError):
        info.name = "y"  # type: ignore[misc]
