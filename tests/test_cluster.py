"""Distributed cluster runtime: real node processes, elastic stealing,
dead-node recovery.

The acceptance bar is byte-identity: whatever the cluster did — static
shards, stolen tail ranges, a node killed mid-shard and its remainder
regenerated elsewhere — the merged per-table files must equal a
single-node run byte for byte. Shard planning is tested as an exact
partition (union covers every row once, no overlap) including the edge
cases: tables smaller than the node count, zero-row tables, and package
sizes that do not divide shard boundaries.
"""

from __future__ import annotations

import filecmp
import os

import pytest

from repro import obs
from repro.cli.main import main
from repro.engine import GenerationEngine
from repro.exceptions import SchedulingError
from repro.output.config import OutputConfig
from repro.resilience import FaultPlan
from repro.scheduler import (
    ClusterScheduler,
    MetaScheduler,
    generate,
    node_share,
    partition_rows,
    plan_shards,
)
from tests.conftest import demo_schema


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


def _file_output(directory, fmt: str = "csv") -> OutputConfig:
    return OutputConfig(kind="file", format=fmt, directory=str(directory))


def _single_node(tmp_path, schema, fmt: str = "csv", package_size: int = 25):
    """Reference run: the bytes every cluster variant must reproduce."""
    output = _file_output(tmp_path / "single", fmt)
    generate(GenerationEngine(schema), output, package_size=package_size)
    return output


def _assert_identical(schema, reference: OutputConfig, candidate: OutputConfig):
    for table in schema.tables:
        left = reference.table_path(table.name)
        right = candidate.table_path(table.name)
        assert filecmp.cmp(left, right, shallow=False), (
            f"table {table.name}: cluster output differs from single-node"
        )


class TestShardPlanning:
    @pytest.mark.parametrize("size", [0, 1, 2, 3, 7, 24, 100, 1001])
    @pytest.mark.parametrize("nodes", [1, 2, 3, 5, 8])
    def test_union_is_exact_partition(self, size, nodes):
        shards = plan_shards({"t": size}, nodes)
        assert len(shards) == nodes
        ranges = sorted(r for shard in shards for r in shard)
        position = 0
        for table, start, stop in ranges:
            assert table == "t"
            assert start == position, "gap or overlap between shards"
            assert stop > start, "empty ranges must be dropped"
            position = stop
        assert position == size

    def test_fewer_rows_than_nodes(self):
        shards = plan_shards({"tiny": 3}, 5)
        owning = [shard for shard in shards if shard]
        assert len(owning) == 3
        assert all(stop - start == 1 for shard in owning
                   for _, start, stop in shard)

    def test_zero_row_table_in_no_shard(self):
        shards = plan_shards({"empty": 0, "t": 10}, 3)
        assert all(
            table != "empty" for shard in shards for table, _, _ in shard
        )

    def test_non_dividing_package_size_covers_share_exactly(self):
        # package size 7 divides neither the 100-row table nor the
        # 33/33/34 shard boundaries; the packages must still tile each
        # shard exactly.
        for node in range(3):
            start, stop = node_share(100, 3, node)
            packages = partition_rows("t", stop - start, 7, offset=start)
            position = start
            for package in packages:
                assert package.start == position
                position = package.stop
            assert position == stop

    def test_multi_table_shards_cover_all_tables(self):
        sizes = {"a": 10, "b": 0, "c": 2, "d": 57}
        shards = plan_shards(sizes, 4)
        covered: dict[str, int] = {name: 0 for name in sizes}
        for shard in shards:
            for table, start, stop in shard:
                covered[table] += stop - start
        assert covered == {"a": 10, "b": 0, "c": 2, "d": 57}


class TestClusterByteIdentity:
    def test_three_nodes_merge_to_single_node_bytes(self, tmp_path):
        schema = demo_schema()
        single = _single_node(tmp_path, schema)
        output = _file_output(tmp_path / "cluster")
        report = ClusterScheduler(schema, output=output, package_size=25).run(3)
        assert report.distributed
        assert report.rows == 240
        assert report.node_failures == 0
        assert len(report.nodes) == 3
        _assert_identical(schema, single, output)
        # part files are an implementation detail; the merge removes them
        assert not os.path.exists(tmp_path / "cluster" / ".dbsynth-parts")

    @pytest.mark.parametrize("fmt", ["json", "sql", "xml"])
    def test_formats_with_headers_and_footers(self, tmp_path, fmt):
        # sql/xml have non-trivial header+footer framing the merge must
        # emit exactly once, around parts from three different nodes.
        schema = demo_schema()
        single = _single_node(tmp_path, schema, fmt=fmt)
        output = _file_output(tmp_path / "cluster", fmt)
        ClusterScheduler(schema, output=output, package_size=25).run(3)
        _assert_identical(schema, single, output)

    def test_more_nodes_than_rows(self, tmp_path):
        schema = demo_schema(customers=3, orders=5)
        single = _single_node(tmp_path, schema, package_size=2)
        output = _file_output(tmp_path / "cluster")
        report = ClusterScheduler(schema, output=output, package_size=2).run(5)
        assert report.rows == 8
        _assert_identical(schema, single, output)

    def test_null_sink_counts_rows(self):
        report = ClusterScheduler(
            demo_schema(), output=OutputConfig(kind="null"), package_size=30
        ).run(2)
        assert report.rows == 240
        assert report.bytes_written > 0

    def test_single_node_cluster(self, tmp_path):
        schema = demo_schema()
        single = _single_node(tmp_path, schema)
        output = _file_output(tmp_path / "cluster")
        ClusterScheduler(schema, output=output, package_size=25).run(1)
        _assert_identical(schema, single, output)

    def test_nodes_journal_into_per_node_manifests(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        ClusterScheduler(
            demo_schema(),
            output=_file_output(tmp_path / "out"),
            package_size=30,
            checkpoint=str(checkpoint),
        ).run(3)
        for node in range(3):
            manifest = checkpoint / f"node{node}" / "manifest.jsonl"
            assert manifest.exists()
            text = manifest.read_text()
            assert '"cluster"' in text
            assert '"run_done"' in text


class TestWorkStealing:
    def test_stealing_rebalances_a_slow_node(self, tmp_path):
        schema = demo_schema()
        single = _single_node(tmp_path, schema, package_size=10)
        slow = FaultPlan(slow_nodes={0: 0.02})

        stolen_out = _file_output(tmp_path / "steal")
        stolen = ClusterScheduler(
            schema, output=stolen_out, package_size=10, faults=slow
        ).run(3)
        assert stolen.steals > 0
        assert stolen.stolen_rows > 0
        _assert_identical(schema, single, stolen_out)

        static_out = _file_output(tmp_path / "static")
        static = ClusterScheduler(
            schema, output=static_out, package_size=10, faults=slow,
            steal=False,
        ).run(3)
        assert static.steals == 0
        _assert_identical(schema, single, static_out)
        # the whole point: draining the slow node's tail beats waiting
        assert stolen.makespan < static.makespan

    def test_steal_counters_are_consistent(self):
        report = ClusterScheduler(
            demo_schema(), output=OutputConfig(kind="null"), package_size=10,
            faults=FaultPlan(slow_nodes={0: 0.02}),
        ).run(3)
        assert report.steals > 0
        assert sum(n.steals_yielded for n in report.nodes) == report.steals
        assert sum(n.steals_taken for n in report.nodes) == report.steals
        # the slow node yields, never takes
        slow = report.nodes[0]
        assert slow.steals_yielded > 0
        assert slow.steals_taken == 0

    def test_stolen_ranges_trace_as_redo_free_reassignments(self):
        tracer = obs.enable_tracing()
        ClusterScheduler(
            demo_schema(), output=OutputConfig(kind="null"), package_size=10,
            faults=FaultPlan(slow_nodes={0: 0.02}),
        ).run(3)
        records = tracer.drain()
        stolen = [
            r for r in records
            if r.name == "node.assignment" and r.attrs.get("reason") == "steal"
        ]
        assert stolen, "expected stolen assignment spans in the trace"
        # redo-free: stolen work runs at attempt 1 and names its origin —
        # always some *other* node (steals can cascade past node 0).
        assert all(r.attrs["attempt"] == 1 for r in stolen)
        assert all(r.attrs["origin"] != r.attrs["node"] for r in stolen)
        packages = [r for r in records if r.name == "scheduler.package"]
        assert all(r.attrs["attempt"] == 1 for r in packages)
        # and the rendered tree surfaces the reassignment, so
        # `dbsynth stats --tree` shows stolen spans without raw JSONL
        # spelunking.
        tree = "\n".join(obs.render_span_tree(records))
        assert "reason=steal" in tree
        assert "origin=" in tree


class TestDeadNodeRecovery:
    def test_killed_node_resumes_elsewhere_byte_identically(self, tmp_path):
        schema = demo_schema()
        single = _single_node(tmp_path, schema, package_size=10)
        # node 1 owns orders rows [60, 120); kill it entering its second
        # orders package, after one package is durable.
        start, _stop = node_share(180, 3, 1)
        faults = FaultPlan(
            kill_node_at=("orders", start + 10),
            latch_dir=str(tmp_path / "latch"),
        )
        os.makedirs(tmp_path / "latch")
        output = _file_output(tmp_path / "cluster")
        report = ClusterScheduler(
            schema, output=output, package_size=10, faults=faults
        ).run(3)
        assert report.node_failures == 1
        assert report.reassigned_ranges >= 1
        assert report.rows == 240
        _assert_identical(schema, single, output)

    def test_kill_before_any_durable_package(self, tmp_path):
        # node 2 dies on the very first package of its customer shard:
        # its empty part file must be removed so the recipient can
        # recreate the range from the same start row.
        schema = demo_schema()
        single = _single_node(tmp_path, schema, package_size=10)
        start, _stop = node_share(60, 3, 2)
        faults = FaultPlan(
            kill_node_at=("customer", start),
            latch_dir=str(tmp_path / "latch"),
        )
        os.makedirs(tmp_path / "latch")
        output = _file_output(tmp_path / "cluster")
        report = ClusterScheduler(
            schema, output=output, package_size=10, faults=faults
        ).run(3)
        assert report.node_failures == 1
        _assert_identical(schema, single, output)

    def test_failure_cap_stops_crash_loops(self, tmp_path):
        # no latch: every process that reaches the package dies, so the
        # respawn dies too and the cap must abort the run.
        faults = FaultPlan(kill_node_at=("customer", 0))
        with pytest.raises(SchedulingError, match="node failures exceed"):
            ClusterScheduler(
                demo_schema(), output=_file_output(tmp_path / "out"),
                package_size=10, faults=faults, max_node_failures=1,
            ).run(1)


class TestValidation:
    def test_binary_formats_are_refused(self, tmp_path):
        # build a valid config, then flip the format past __post_init__
        # so the check runs with or without pyarrow installed
        output = OutputConfig(kind="file", format="csv", directory=str(tmp_path))
        object.__setattr__(output, "format", "arrow")
        with pytest.raises(SchedulingError, match="package-framed binary"):
            ClusterScheduler(demo_schema(), output=output)

    def test_non_mergeable_sinks_are_refused(self):
        with pytest.raises(SchedulingError, match="distributed runs support"):
            ClusterScheduler(
                demo_schema(),
                output=OutputConfig(
                    kind="sqlite", format="sql", database=":memory:"
                ),
            )

    def test_node_count_must_be_positive(self):
        with pytest.raises(SchedulingError):
            ClusterScheduler(
                demo_schema(), output=OutputConfig(kind="null")
            ).run(0)

    def test_meta_rejects_workers_per_node(self):
        scheduler = MetaScheduler(
            demo_schema(), output=OutputConfig(kind="null"), workers_per_node=2
        )
        with pytest.raises(SchedulingError, match="workers_per_node"):
            scheduler.run(2, distributed=True)

    def test_meta_rejects_cross_run_resume(self, tmp_path):
        scheduler = MetaScheduler(
            demo_schema(), output=OutputConfig(kind="null"),
            resume_from=str(tmp_path),
        )
        with pytest.raises(SchedulingError, match="resume_from"):
            scheduler.run(2, distributed=True)


class TestDistributedMeta:
    def test_distributed_run_matches_single_node(self, tmp_path):
        schema = demo_schema()
        single = _single_node(tmp_path, schema)
        output = _file_output(tmp_path / "cluster")
        report = MetaScheduler(schema, output=output, package_size=25).run(
            2, distributed=True
        )
        assert report.distributed
        _assert_identical(schema, single, output)

    def test_tree_shape_parity_across_execution_paths(self):
        """`dbsynth stats --tree` must render the same shape whatever ran:
        sequential nodes, pooled processes, or the distributed cluster."""
        totals = {}
        for mode in ("sequential", "pooled", "distributed"):
            tracer = obs.enable_tracing()
            scheduler = MetaScheduler(
                demo_schema(), output=OutputConfig(kind="null"),
                package_size=30,
            )
            if mode == "distributed":
                scheduler.run(2, distributed=True)
            else:
                scheduler.run(2, processes=mode == "pooled")
            records = tracer.drain()
            meta_run = next(r for r in records if r.name == "meta.run")
            nodes = [r for r in records if r.name == "meta.node"]
            assert len(nodes) == 2, mode
            assert all(r.parent_id == meta_run.span_id for r in nodes), mode
            assert sorted(r.attrs["node"] for r in nodes) == [0, 1], mode
            totals[mode] = obs.table_totals(records)
            obs.reset()
        assert totals["sequential"] == totals["pooled"] == totals["distributed"]


class TestClusterCLI:
    def test_generate_distributed(self, tmp_path, capsys):
        single = tmp_path / "single"
        cluster = tmp_path / "cluster"
        base = ["generate", "--suite", "tpch", "--sf", "0.0005",
                "--format", "csv", "--header", "-q"]
        assert main(base + ["-d", str(single)]) == 0
        assert main(
            base + ["-d", str(cluster), "--nodes", "3", "--distributed"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 distributed nodes" in out
        assert "steals:" in out
        for name in os.listdir(single):
            assert filecmp.cmp(
                single / name, cluster / name, shallow=False
            ), name

    def test_pooled_nodes_require_null_sink(self, tmp_path, capsys):
        code = main([
            "generate", "--suite", "tpch", "--sf", "0.0005",
            "-d", str(tmp_path), "--nodes", "2",
        ])
        assert code == 2
        assert "--distributed" in capsys.readouterr().err
