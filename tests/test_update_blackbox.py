"""Tests for the update black box (deterministic change epochs)."""

from __future__ import annotations

import pytest

from repro.db.ddl import create_schema_sql
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.core.loader import DataLoader
from repro.engine import GenerationEngine
from repro.exceptions import GenerationError
from repro.update.blackbox import UpdateBlackBox, UpdateEvent
from tests.conftest import demo_schema


@pytest.fixture
def blackbox() -> UpdateBlackBox:
    return UpdateBlackBox(
        demo_schema(), insert_fraction=0.1, update_fraction=0.1, delete_fraction=0.05
    )


class TestPlan:
    def test_counts_scale_with_fractions(self, blackbox):
        plan = blackbox.plan("customer", 1)
        assert plan.inserts == 6
        assert plan.updates == 6
        assert plan.deletes == 3

    def test_insert_offsets_advance_per_epoch(self, blackbox):
        assert blackbox.plan("customer", 1).insert_start == 60
        assert blackbox.plan("customer", 2).insert_start == 66

    def test_epochs_start_at_one(self, blackbox):
        with pytest.raises(GenerationError):
            blackbox.plan("customer", 0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(GenerationError):
            UpdateBlackBox(demo_schema(), insert_fraction=-0.1)


class TestEvents:
    def test_event_order_delete_update_insert(self, blackbox):
        kinds = [e.kind for e in blackbox.epoch_events("customer", 1)]
        boundaries = [kinds.index(k) for k in ("delete", "update", "insert")]
        assert boundaries == sorted(boundaries)

    def test_epoch_is_repeatable(self, blackbox):
        first = list(blackbox.epoch_events("customer", 1))
        second = list(blackbox.epoch_events("customer", 1))
        assert first == second

    def test_epoch_identical_across_instances(self):
        # Two independent black boxes over the same model agree — epochs
        # are a pure function of (model seed, epoch), not object state.
        boxes = [
            UpdateBlackBox(demo_schema(), insert_fraction=0.1,
                           update_fraction=0.1, delete_fraction=0.05)
            for _ in range(2)
        ]
        for table in ("customer", "orders"):
            assert list(boxes[0].epoch_events(table, 2)) == list(
                boxes[1].epoch_events(table, 2)
            )

    def test_deletes_and_updates_disjoint(self, blackbox):
        for epoch in (1, 2, 3):
            events = list(blackbox.epoch_events("customer", epoch))
            deleted = {e.row for e in events if e.kind == "delete"}
            updated = {e.row for e in events if e.kind == "update"}
            assert not deleted & updated

    def test_epochs_differ(self, blackbox):
        one = [e for e in blackbox.epoch_events("customer", 1) if e.kind == "update"]
        two = [e for e in blackbox.epoch_events("customer", 2) if e.kind == "update"]
        assert [e.row for e in one] != [e.row for e in two] or [
            e.values for e in one
        ] != [e.values for e in two]

    def test_update_rows_within_base_table(self, blackbox):
        for event in blackbox.epoch_events("customer", 1):
            if event.kind in ("update", "delete"):
                assert 0 <= event.row < 60

    def test_update_rows_distinct(self, blackbox):
        rows = [e.row for e in blackbox.epoch_events("customer", 1)
                if e.kind == "update"]
        assert len(rows) == len(set(rows))

    def test_updates_change_values(self, blackbox):
        engine = GenerationEngine(demo_schema())
        for event in blackbox.epoch_events("customer", 1):
            if event.kind != "update":
                continue
            assert event.columns is not None
            base_row = engine.generate_row("customer", event.row)
            names = engine.bound_table("customer").column_names
            base_values = tuple(
                base_row[names.index(column)] for column in event.columns
            )
            assert event.values != base_values

    def test_keys_never_updated(self, blackbox):
        for event in blackbox.epoch_events("customer", 1):
            if event.kind == "update":
                assert "c_id" not in (event.columns or ())

    def test_references_never_updated(self, blackbox):
        for event in blackbox.epoch_events("orders", 1):
            if event.kind == "update":
                assert "o_cust" not in (event.columns or ())

    def test_inserts_carry_full_rows(self, blackbox):
        inserts = [e for e in blackbox.epoch_events("customer", 1)
                   if e.kind == "insert"]
        assert len(inserts) == 6
        for event in inserts:
            assert event.columns == ("c_id", "c_name", "c_balance", "c_comment")
            assert event.values is not None
            assert event.values[0] == event.row + 1  # IdGenerator key

    def test_inserted_keys_continue_sequence(self, blackbox):
        epoch1 = [e for e in blackbox.epoch_events("customer", 1)
                  if e.kind == "insert"]
        epoch2 = [e for e in blackbox.epoch_events("customer", 2)
                  if e.kind == "insert"]
        keys1 = [e.values[0] for e in epoch1]
        keys2 = [e.values[0] for e in epoch2]
        assert keys1 == list(range(61, 67))
        assert keys2 == list(range(67, 73))

    def test_insert_references_stay_valid(self, blackbox):
        engine = GenerationEngine(demo_schema())
        customer_keys = {v[0] for v in engine.iter_rows("customer")}
        for event in blackbox.epoch_events("orders", 1):
            if event.kind == "insert":
                ref = event.values[1]
                assert ref in customer_keys


class TestApplyEpoch:
    def test_apply_to_live_database(self, blackbox):
        adapter = SQLiteAdapter(":memory:")
        schema = demo_schema()
        adapter.execute_script(create_schema_sql(schema, "sqlite"))
        DataLoader(adapter).load(GenerationEngine(schema))
        before = adapter.row_count("customer")

        counts = blackbox.apply_epoch(adapter, "customer", 1, "c_id")
        after = adapter.row_count("customer")
        assert counts == {"insert": 6, "update": 6, "delete": 3}
        assert after == before + 6 - 3
        adapter.close()

    def test_counts_are_affected_rows_not_emitted(self, blackbox):
        # Empty every base row first: deletes and updates find nothing to
        # touch, so their counts are 0; inserts still land.
        adapter = SQLiteAdapter(":memory:")
        schema = demo_schema()
        adapter.execute_script(create_schema_sql(schema, "sqlite"))
        counts = blackbox.apply_epoch(adapter, "customer", 1, "c_id")
        assert counts == {"insert": 6, "update": 0, "delete": 0}
        assert adapter.row_count("customer") == 6
        adapter.close()

    def test_apply_is_idempotent_per_epoch_for_updates(self):
        # Re-applying the same epoch's updates yields the same values.
        box = UpdateBlackBox(demo_schema(), update_fraction=0.1,
                             insert_fraction=0.0, delete_fraction=0.0)
        first = [e.values for e in box.epoch_events("customer", 3)]
        second = [e.values for e in box.epoch_events("customer", 3)]
        assert first == second


def test_event_dataclass_frozen():
    event = UpdateEvent("delete", "t", 1)
    with pytest.raises(AttributeError):
        event.row = 2  # type: ignore[misc]
