"""Tests for the DBSynth back half: translator, loader, fidelity, project."""

from __future__ import annotations

import os

import pytest

from repro.core.fidelity import (
    FidelityChecker,
    FidelityQuery,
    compare_query,
    default_queries,
)
from repro.core.loader import DataLoader
from repro.core.model_builder import build_model
from repro.core.project import DBSynthProject
from repro.core.translator import SchemaTranslator
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.engine import GenerationEngine
from repro.exceptions import ExtractionError
from tests.conftest import demo_schema


class TestSchemaTranslator:
    def test_to_sql_contains_all_tables(self, schema):
        sql = SchemaTranslator().to_sql(schema)
        assert "CREATE TABLE customer" in sql
        assert "CREATE TABLE orders" in sql

    def test_apply_creates_tables(self, schema):
        target = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, target)
        assert target.table_names() == ["customer", "orders"]
        target.close()


class TestDataLoader:
    @pytest.fixture
    def target(self, schema):
        adapter = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, adapter)
        yield adapter
        adapter.close()

    def test_bulk_load_counts(self, engine, target):
        report = DataLoader(target).load(engine)
        assert report.rows_by_table == {"customer": 60, "orders": 180}
        assert report.total_rows == 240
        assert target.row_count("orders") == 180

    def test_sql_load_equals_bulk_load(self, schema, target):
        DataLoader(target).load(GenerationEngine(schema), bulk=True)
        bulk_rows = target.execute("SELECT * FROM orders ORDER BY o_id")

        other = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, other)
        DataLoader(other).load(GenerationEngine(schema), bulk=False)
        sql_rows = other.execute("SELECT * FROM orders ORDER BY o_id")
        assert bulk_rows == sql_rows
        other.close()

    def test_load_respects_referential_order(self, engine, target):
        # Foreign keys are enforced during the load when enabled.
        target.execute_script("PRAGMA foreign_keys = ON;")
        report = DataLoader(target).load(engine)
        assert report.total_rows == 240
        orphan = target.execute(
            "SELECT COUNT(*) FROM orders o LEFT JOIN customer c "
            "ON o.o_cust = c.c_id WHERE c.c_id IS NULL"
        )[0][0]
        assert orphan == 0

    def test_subset_load(self, engine, target):
        report = DataLoader(target).load(engine, tables=["customer"])
        assert report.rows_by_table == {"customer": 60}

    def test_small_batch_size(self, engine, target):
        report = DataLoader(target, batch_size=7).load(engine, tables=["customer"])
        assert report.rows_by_table["customer"] == 60

    def test_dates_stored_as_iso_text(self, engine, target):
        DataLoader(target).load(engine)
        value = target.execute("SELECT o_date FROM orders LIMIT 1")[0][0]
        assert isinstance(value, str) and value.startswith("2020-")


class TestFidelity:
    def test_identical_databases_pass(self, engine, schema):
        a = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, a)
        DataLoader(a).load(engine)
        b = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, b)
        DataLoader(b).load(GenerationEngine(schema))
        report = FidelityChecker(a, b).run_default(schema)
        assert report.passed
        assert report.pass_rate == 1.0
        a.close()
        b.close()

    def test_mismatched_count_fails(self, schema):
        a = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, a)
        DataLoader(a).load(GenerationEngine(schema))
        b = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, b)  # left empty
        report = FidelityChecker(a, b).run(
            [FidelityQuery("count", "SELECT COUNT(*) FROM customer", 0.01)]
        )
        assert not report.passed
        assert report.failures()
        a.close()
        b.close()

    def test_relative_error_computed(self):
        a = SQLiteAdapter(":memory:")
        b = SQLiteAdapter(":memory:")
        a.execute_script("CREATE TABLE t (x REAL); INSERT INTO t VALUES (100);")
        b.execute_script("CREATE TABLE t (x REAL); INSERT INTO t VALUES (110);")
        query = FidelityQuery("avg", "SELECT AVG(x) FROM t", tolerance=0.15)
        comparison = compare_query(query, a, b)
        assert comparison.relative_error == pytest.approx(0.10)
        assert comparison.passed
        strict = compare_query(
            FidelityQuery("avg", "SELECT AVG(x) FROM t", tolerance=0.05), a, b
        )
        assert not strict.passed
        a.close()
        b.close()

    def test_absolute_slack_for_small_counts(self):
        a = SQLiteAdapter(":memory:")
        b = SQLiteAdapter(":memory:")
        a.execute_script("CREATE TABLE t (x REAL); INSERT INTO t VALUES (3);")
        b.execute_script("CREATE TABLE t (x REAL); INSERT INTO t VALUES (5);")
        query = FidelityQuery(
            "small", "SELECT SUM(x) FROM t", tolerance=0.1, absolute_slack=3.0
        )
        assert compare_query(query, a, b).passed
        a.close()
        b.close()

    def test_non_numeric_compared_by_equality(self):
        a = SQLiteAdapter(":memory:")
        b = SQLiteAdapter(":memory:")
        a.execute_script("CREATE TABLE t (x TEXT); INSERT INTO t VALUES ('same');")
        b.execute_script("CREATE TABLE t (x TEXT); INSERT INTO t VALUES ('same');")
        query = FidelityQuery("text", "SELECT MAX(x) FROM t")
        assert compare_query(query, a, b).passed
        a.close()
        b.close()

    def test_default_queries_cover_tables_and_aggregates(self, schema):
        queries = default_queries(schema)
        names = [q.name for q in queries]
        assert "count(customer)" in names
        assert "avg(orders.o_quantity)" in names
        assert any(n.startswith("nulls(") for n in names)

    def test_empty_query_list_rejected(self, schema):
        a = SQLiteAdapter(":memory:")
        with pytest.raises(ExtractionError):
            FidelityChecker(a, a).run([])
        a.close()

    def test_summary_lines_format(self, schema):
        a = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, a)
        DataLoader(a).load(GenerationEngine(schema))
        report = FidelityChecker(a, a).run(
            [FidelityQuery("count", "SELECT COUNT(*) FROM customer")]
        )
        lines = report.summary_lines()
        assert len(lines) == 1
        assert "[ok ]" in lines[0]
        a.close()


class TestDBSynthProject:
    def test_full_pipeline(self, imdb_adapter, tmp_path):
        project = DBSynthProject(name="imdb", source=imdb_adapter)
        project.extract()
        project.profile()
        result = project.build_model()
        assert result.schema.name == "imdb"

        paths = project.save(str(tmp_path / "proj"))
        assert os.path.exists(paths.model_xml)
        assert os.path.exists(paths.ddl_sql)
        assert os.path.isdir(paths.artifact_dir)

        target = SQLiteAdapter(":memory:")
        report = project.load_into(target, project.engine())
        assert report.total_rows > 0

        fidelity = project.verify(target)
        assert fidelity.pass_rate > 0.8
        target.close()

    def test_steps_run_implicitly(self, imdb_adapter):
        project = DBSynthProject(name="imdb", source=imdb_adapter)
        # build_model without explicit extract/profile
        result = project.build_model()
        assert result is not None
        assert project.extracted is not None

    def test_scale_factor_override(self, imdb_adapter):
        project = DBSynthProject(name="imdb", source=imdb_adapter)
        engine = project.engine(scale_factor=0.5)
        assert engine.sizes["movies"] == 40

    def test_save_and_reload_round_trip(self, imdb_adapter, tmp_path):
        project = DBSynthProject(name="imdb", source=imdb_adapter)
        project.profile()
        project.build_model()
        directory = str(tmp_path / "saved")
        project.save(directory)

        schema, artifacts = DBSynthProject.load_saved(directory)
        engine = GenerationEngine(schema, artifacts)
        original_engine = project.engine()
        reloaded = [
            [str(v) for v in row] for row in engine.iter_rows("movies", 0, 10)
        ]
        original = [
            [str(v) for v in row]
            for row in original_engine.iter_rows("movies", 0, 10)
        ]
        assert reloaded == original

    def test_load_saved_missing_directory(self, tmp_path):
        with pytest.raises(ExtractionError, match="no saved model"):
            DBSynthProject.load_saved(str(tmp_path / "nope"))


class TestArtifactStorePersistence:
    def test_save_and_load_dir(self, imdb_adapter, tmp_path):
        result = build_model(imdb_adapter)
        directory = str(tmp_path / "artifacts")
        result.artifacts.save_dir(directory)

        from repro.generators.base import ArtifactStore

        restored = ArtifactStore.load_dir(directory)
        assert restored.names() == result.artifacts.names()

    def test_unknown_artifact_rejected(self, tmp_path):
        from repro.exceptions import GenerationError
        from repro.generators.base import ArtifactStore

        store = ArtifactStore()
        with pytest.raises(GenerationError, match="unknown model artifact"):
            store.get("missing")

    def test_unserializable_artifact(self, tmp_path):
        from repro.exceptions import GenerationError
        from repro.generators.base import ArtifactStore

        store = ArtifactStore()
        store.put("bad", object())
        with pytest.raises(GenerationError, match="not serializable"):
            store.save_dir(str(tmp_path / "x"))
