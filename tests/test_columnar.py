"""Columnar pipeline: typed columns, vectorized CSV, binary formats.

The columnar path's whole contract is byte-identity with the row path —
these tests pin it at every layer: column containers return canonical
Python values, ``generate_columns`` transposes to exactly the per-row
values, ``write_block`` emits exactly ``write_rows``'s text (including
the awkward delimiter/date-format corners that defeat the charset
proofs), and the scheduler produces identical output with the fast path
on, off, and across backends. Arrow/Parquet coverage is split: the
graceful no-pyarrow error is always tested, the real encode/decode round
trips run where pyarrow is installed (CI's arrow leg).
"""

from __future__ import annotations

import datetime

import numpy as np
import pytest

from repro import columnar
from repro.engine import GenerationEngine
from repro.exceptions import OutputError
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from repro.output.arrow import ArrowWriter, have_pyarrow
from repro.output.columnar import csv_escape, format_csv_block
from repro.output.config import OutputConfig
from repro.output.rows import ValueFormatter
from repro.output.writers import CsvWriter
from repro.resilience.faults import FaultInjectingOutput, InjectedCrash
from repro.scheduler import Scheduler
from tests.conftest import demo_schema

ROWS = 300


def columnar_schema(rows: int = ROWS, seed: int = 7) -> Schema:
    """One table hitting every typed column kind plus object fallbacks."""
    schema = Schema("col", seed=seed)
    schema.add_table(Table("t", str(rows), [
        Field.of("c_id", "BIGINT", GeneratorSpec(
            "IdGenerator", {"base": 100, "step": 7}
        ), primary=True),
        Field.of("c_long", "BIGINT", GeneratorSpec(
            "LongGenerator", {"min": -50, "max": 5000}
        )),
        Field.of("c_money", "DECIMAL(12,2)", GeneratorSpec(
            "DoubleGenerator", {"min": -10.0, "max": 10.0, "places": 2}
        )),
        Field.of("c_double", "DOUBLE", GeneratorSpec(
            "DoubleGenerator", {"min": 0.0, "max": 1.0}
        )),
        Field.of("c_flag", "BOOLEAN", GeneratorSpec(
            "BooleanGenerator", {"true_probability": 0.4}
        )),
        Field.of("c_date", "DATE", GeneratorSpec(
            "DateGenerator", {"min": "1995-01-01", "max": "1995-03-31"}
        )),
        Field.of("c_dict", "VARCHAR(10)", GeneratorSpec(
            "DictListGenerator",
            {"values": ["alpha", "beta", "gamma"], "weights": [5, 3, 2]},
        )),
        Field.of("c_enum", "VARCHAR(10)", GeneratorSpec(
            "DictListGenerator", {"values": ["N1", "N2"], "by_row": True}
        )),
        Field.of("c_phone", "VARCHAR(16)", GeneratorSpec(
            "PatternStringGenerator", {"pattern": "##-@@^^"}
        )),
        Field.of("c_rand", "VARCHAR(8)", GeneratorSpec(
            "RandomStringGenerator", {"min": 2, "max": 8}
        )),
        Field.of("c_null", "BIGINT", GeneratorSpec(
            "NullGenerator", {"probability": 0.3},
            [GeneratorSpec("LongGenerator", {"min": 0, "max": 9})],
        )),
        Field.of("c_ts", "TIMESTAMP", GeneratorSpec(
            "TimestampGenerator", {"min": "1995-01-01", "max": "1995-01-31"}
        )),
    ]))
    return schema


@pytest.fixture(scope="module")
def col_engine() -> GenerationEngine:
    return GenerationEngine(columnar_schema())


@pytest.fixture(scope="module")
def col_block(col_engine):
    return col_engine.generate_columns("t")


# -- column containers --------------------------------------------------------


class TestColumns:
    def test_int_column_canonical_values(self):
        col = columnar.IntColumn(np.array([1, -2, 3], dtype=np.int64))
        assert col[1] == -2
        assert type(col[1]) is int
        assert col.to_pylist() == [1, -2, 3]
        assert all(type(v) is int for v in col.to_pylist())

    def test_null_mask_reads_as_none(self):
        col = columnar.IntColumn(np.array([1, 2, 3], dtype=np.int64))
        col.add_nulls(np.array([False, True, False]))
        assert col[0] == 1 and col[1] is None
        assert col.to_pylist() == [1, None, 3]

    def test_null_masks_or_combine(self):
        col = columnar.IntColumn(np.array([1, 2, 3], dtype=np.int64))
        col.add_nulls(np.array([True, False, False]))
        col.add_nulls(np.array([False, False, True]))
        assert col.to_pylist() == [None, 2, None]

    def test_date_column_memoizes_conversions(self):
        ordinal = datetime.date(1995, 6, 1).toordinal()
        cache: dict = {}
        col = columnar.DateColumn(
            np.array([ordinal, ordinal], dtype=np.int64), cache
        )
        values = col.to_pylist()
        assert values[0] is values[1]  # one date object per distinct day
        assert values[0] == datetime.date(1995, 6, 1)
        assert cache[ordinal] is values[0]

    def test_dict_column_indexes_entries(self):
        col = columnar.DictColumn(
            np.array([2, 0, 1], dtype=np.int64), ["a", "b", "c"]
        )
        assert col.to_pylist() == ["c", "a", "b"]
        assert col[0] == "c"

    def test_block_transpose_and_zero_columns(self):
        block = columnar.ColumnBlock(
            ["x", "y"],
            [
                columnar.IntColumn(np.array([1, 2], dtype=np.int64)),
                columnar.ObjectColumn(["a", "b"]),
            ],
            2,
        )
        assert block.to_rows() == [[1, "a"], [2, "b"]]
        empty = columnar.ColumnBlock([], [], 3)
        assert empty.to_rows() == [[], [], []]

    def test_int_column_from_u64_bounds(self):
        outs = np.array([0, 2**64 - 1, 12345], dtype=np.uint64)
        # Result range beyond int64: caller must fall back.
        assert columnar.int_column_from_u64(outs, 2**64, 0) is None
        assert columnar.int_column_from_u64(outs, 10, 2**63 - 5) is None
        # Span above 2**63 still exact when the result range fits.
        span = 2**63 + 11
        col = columnar.int_column_from_u64(outs, span, -(2**62))
        expected = [-(2**62) + int(v) % span for v in outs.tolist()]
        assert col.to_pylist() == expected


# -- engine columns -----------------------------------------------------------


class TestGenerateColumns:
    def test_typed_kinds(self, col_engine, col_block):
        kinds = dict(zip(col_block.names, (c.kind for c in col_block.columns)))
        assert kinds["c_id"] == "int"
        assert kinds["c_long"] == "int"
        assert kinds["c_money"] == "float"
        assert kinds["c_double"] == "float"
        assert kinds["c_flag"] == "bool"
        assert kinds["c_date"] == "date"
        assert kinds["c_dict"] == "dict"
        assert kinds["c_enum"] == "dict"
        assert kinds["c_phone"] == "str"
        assert kinds["c_rand"] == "str"
        assert kinds["c_null"] == "int"  # typed child column + null mask
        assert kinds["c_ts"] == "object"  # timestamps stay on the object path

    def test_null_wrapper_attaches_mask(self, col_block):
        col = col_block.columns[col_block.names.index("c_null")]
        values = col.to_pylist()
        assert any(v is None for v in values)
        assert any(v is not None for v in values)

    def test_pattern_charset_tagged(self, col_block):
        col = col_block.columns[col_block.names.index("c_phone")]
        assert col.charset is not None
        assert "-" in col.charset and "5" in col.charset

    def test_block_matches_per_row_path(self, col_engine, col_block):
        expected = [col_engine.generate_row("t", row) for row in range(ROWS)]
        assert col_block.to_rows() == expected

    def test_canonical_python_types(self, col_block):
        for row in col_block.to_rows()[:50]:
            for value in row:
                assert not isinstance(value, np.generic), repr(value)

    def test_engine_rows_are_the_transposed_block(self, col_engine, col_block):
        assert col_engine.generate_rows("t") == col_block.to_rows()


# -- vectorized CSV -----------------------------------------------------------


def _writers(**kwargs) -> CsvWriter:
    names = columnar_schema().tables[0].fields
    return CsvWriter("t", [f.name for f in names], **kwargs)


class TestCsvBlock:
    def test_block_equals_rows_default_dialect(self, col_block):
        writer = _writers()
        assert writer.write_block(col_block) == writer.write_rows(
            col_block.to_rows()
        )

    @pytest.mark.parametrize("delimiter", [",", ".", "-", "0"])
    def test_block_equals_rows_hostile_delimiters(self, col_block, delimiter):
        # "." defeats the float charset, "-" the pattern/int charsets,
        # "0" every numeric charset — all must fall back per value and
        # still match the row path byte for byte.
        writer = _writers(delimiter=delimiter)
        assert writer.write_block(col_block) == writer.write_rows(
            col_block.to_rows()
        )

    def test_block_equals_rows_date_format_clash(self, col_block):
        formatter = ValueFormatter(date_format="%Y|%m|%d", null_token="NULL")
        writer = _writers(formatter=formatter)
        text = writer.write_block(col_block)
        reference = _writers(
            formatter=ValueFormatter(date_format="%Y|%m|%d", null_token="NULL")
        )
        assert text == reference.write_rows(col_block.to_rows())
        assert '"1995|' in text  # dates really did get quoted

    def test_null_token_patched_into_typed_columns(self, col_block):
        formatter = ValueFormatter(null_token="\\N")
        writer = _writers(formatter=formatter)
        text = writer.write_block(col_block)
        assert "\\N" in text

    def test_format_csv_block_zero_rows(self, col_engine):
        block = col_engine.generate_columns("t", 0, 0)
        assert format_csv_block(block, _writers()) == ""


class TestCsvQuoting:
    """Satellite regression: quoting triggers on delimiter, quote, and
    terminator — in both the row path and the block fast path."""

    def _row(self, value, **kwargs):
        writer = CsvWriter("t", ["a"], **kwargs)
        return writer.write_row([value])

    def test_quote_char_triggers_quoting(self):
        assert self._row('he said "hi"') == '"he said ""hi"""\n'

    def test_terminator_triggers_quoting(self):
        assert self._row("two\nlines") == '"two\nlines"\n'

    def test_delimiter_triggers_quoting(self):
        assert self._row("a|b") == '"a|b"\n'

    def test_plain_text_unquoted(self):
        assert self._row("plain") == "plain\n"

    def test_block_path_shares_the_helper(self):
        writer = CsvWriter("t", ["a"])
        rows = [['he said "hi"'], ["two\nlines"], ["a|b"], ["plain"]]
        block = columnar.ColumnBlock(
            ["a"], [columnar.ObjectColumn([r[0] for r in rows])], len(rows)
        )
        assert writer.write_block(block) == writer.write_rows(rows)
        assert writer.write_rows(rows) == "".join(
            writer.write_row(row) for row in rows
        )

    def test_csv_escape_helper(self):
        specials = frozenset("|") | {'"'} | frozenset("\n")
        assert csv_escape("plain", specials) == "plain"
        assert csv_escape('a"b', specials) == '"a""b"'


# -- scheduler integration ----------------------------------------------------


def _run_memory(schema_engine, *, columnar_flag=None, backend="thread",
                workers=1, fmt="csv"):
    output = OutputConfig(kind="memory", format=fmt, columnar=columnar_flag)
    Scheduler(
        schema_engine, output, package_size=64, workers=workers,
        backend=backend,
    ).run()
    return {
        table: output.memory_output(table)
        for table in schema_engine.schema.sizes()
    }


class TestSchedulerColumnar:
    def test_columnar_on_off_identical(self):
        on = _run_memory(GenerationEngine(columnar_schema()))
        off = _run_memory(
            GenerationEngine(columnar_schema()), columnar_flag=False
        )
        assert on == off

    def test_demo_schema_columnar_on_off_identical(self):
        on = _run_memory(GenerationEngine(demo_schema()))
        off = _run_memory(GenerationEngine(demo_schema()), columnar_flag=False)
        assert on == off

    def test_thread_process_columnar_identical(self):
        threads = _run_memory(
            GenerationEngine(columnar_schema()), backend="thread", workers=2
        )
        processes = _run_memory(
            GenerationEngine(columnar_schema()), backend="process", workers=2
        )
        assert threads == processes

    def test_crash_resume_columnar_byte_identical(self, tmp_path):
        ref_dir = tmp_path / "ref"
        ref_out = OutputConfig(kind="file", format="csv",
                               directory=str(ref_dir))
        Scheduler(
            GenerationEngine(columnar_schema()), ref_out, package_size=64,
        ).run()

        crash_dir = tmp_path / "crash"
        ckpt = str(tmp_path / "ckpt")
        faulty = FaultInjectingOutput(
            OutputConfig(kind="file", format="csv", directory=str(crash_dir)),
            crash_after_writes=2,
        )
        with pytest.raises(InjectedCrash):
            Scheduler(
                GenerationEngine(columnar_schema()), faulty,
                package_size=64, checkpoint=ckpt,
            ).run()
        report = Scheduler(
            GenerationEngine(columnar_schema()),
            OutputConfig(kind="file", format="csv", directory=str(crash_dir)),
            package_size=64, checkpoint=ckpt, resume_from=ckpt,
        ).run()
        assert report.resumed_packages > 0
        assert (crash_dir / "t.tbl").read_bytes() == (
            ref_dir / "t.tbl"
        ).read_bytes()


# -- binary formats without pyarrow -------------------------------------------


@pytest.mark.skipif(have_pyarrow(), reason="pyarrow installed")
class TestBinaryFormatsGated:
    @pytest.mark.parametrize("fmt", ["arrow", "parquet"])
    def test_config_raises_clear_error(self, fmt):
        with pytest.raises(OutputError, match="requires pyarrow"):
            OutputConfig(kind="file", format=fmt)

    def test_write_block_raises_clear_error(self, col_block):
        writer = ArrowWriter("t", list(col_block.names))
        with pytest.raises(OutputError, match="requires pyarrow"):
            writer.write_block(col_block, first=True)


class TestArrowWriterContract:
    def test_row_path_refused(self):
        writer = ArrowWriter("t", ["a"])
        with pytest.raises(OutputError, match="columnar-only"):
            writer.write_rows([[1]])
        with pytest.raises(OutputError, match="columnar-only"):
            writer.write_row([1])

    def test_modes_validated(self):
        with pytest.raises(OutputError, match="unknown arrow writer mode"):
            ArrowWriter("t", ["a"], mode="feather")

    def test_stream_footer_is_eos(self):
        from repro.output.arrow import ARROW_EOS

        assert ArrowWriter("t", ["a"], mode="stream").footer() == ARROW_EOS
        assert ArrowWriter("t", ["a"], mode="parquet").footer() == b""


# -- binary formats with pyarrow (CI arrow leg) -------------------------------


class TestArrowEndToEnd:
    @pytest.fixture(autouse=True)
    def _pa(self):
        self.pa = pytest.importorskip("pyarrow")

    def _expected_rows(self):
        return GenerationEngine(columnar_schema()).generate_rows("t")

    def _as_python(self, table):
        columns = [column.to_pylist() for column in table.columns]
        rows = [list(row) for row in zip(*columns)]
        # Arrow timestamps come back as datetimes already; floats/ints
        # round-trip exactly. Dates are datetime.date.
        return rows

    def test_arrow_stream_round_trip(self, tmp_path):
        output = OutputConfig(
            kind="file", format="arrow", directory=str(tmp_path)
        )
        Scheduler(
            GenerationEngine(columnar_schema()), output, package_size=64,
        ).run()
        with self.pa.ipc.open_stream((tmp_path / "t.arrow").read_bytes()) as r:
            table = r.read_all()
        assert table.num_rows == ROWS
        assert self._as_python(table) == self._expected_rows()

    def test_arrow_stream_multiworker_identical(self, tmp_path):
        for sub, workers, backend in (
            ("a", 1, "thread"), ("b", 3, "thread"), ("c", 2, "process"),
        ):
            directory = tmp_path / sub
            output = OutputConfig(
                kind="file", format="arrow", directory=str(directory)
            )
            Scheduler(
                GenerationEngine(columnar_schema()), output,
                package_size=64, workers=workers, backend=backend,
            ).run()
        assert (tmp_path / "a" / "t.arrow").read_bytes() == (
            tmp_path / "b" / "t.arrow"
        ).read_bytes()
        assert (tmp_path / "a" / "t.arrow").read_bytes() == (
            tmp_path / "c" / "t.arrow"
        ).read_bytes()

    def test_parquet_row_groups_align_to_packages(self, tmp_path):
        pq = pytest.importorskip("pyarrow.parquet")
        output = OutputConfig(
            kind="file", format="parquet", directory=str(tmp_path)
        )
        Scheduler(
            GenerationEngine(columnar_schema()), output, package_size=64,
        ).run()
        source = pq.ParquetFile(str(tmp_path / "t.parquet"))
        assert source.metadata.num_row_groups == -(-ROWS // 64)
        table = source.read()
        assert table.num_rows == ROWS
        assert self._as_python(table) == self._expected_rows()

    def test_parquet_crash_resume(self, tmp_path):
        pq = pytest.importorskip("pyarrow.parquet")
        ref_dir = tmp_path / "ref"
        Scheduler(
            GenerationEngine(columnar_schema()),
            OutputConfig(kind="file", format="parquet",
                         directory=str(ref_dir)),
            package_size=64,
        ).run()

        crash_dir = tmp_path / "crash"
        ckpt = str(tmp_path / "ckpt")
        faulty = FaultInjectingOutput(
            OutputConfig(kind="file", format="parquet",
                         directory=str(crash_dir)),
            crash_after_writes=2,
        )
        with pytest.raises(InjectedCrash):
            Scheduler(
                GenerationEngine(columnar_schema()), faulty,
                package_size=64, checkpoint=ckpt,
            ).run()
        report = Scheduler(
            GenerationEngine(columnar_schema()),
            OutputConfig(kind="file", format="parquet",
                         directory=str(crash_dir)),
            package_size=64, checkpoint=ckpt, resume_from=ckpt,
        ).run()
        assert report.resumed_packages > 0
        reference = pq.read_table(str(ref_dir / "t.parquet"))
        resumed = pq.read_table(str(crash_dir / "t.parquet"))
        assert resumed.equals(reference)
