"""End-to-end integration tests across the full DBSynth/PDGF stack."""

from __future__ import annotations

import pytest

from repro.config import schema_xml
from repro.core import DBSynthProject
from repro.core.fidelity import FidelityChecker, default_queries
from repro.core.loader import DataLoader
from repro.core.translator import SchemaTranslator
from repro.db.sqlite_adapter import SQLiteAdapter
from repro.engine import GenerationEngine
from repro.output.config import OutputConfig
from repro.scheduler import MetaScheduler, generate
from repro.suites.imdb import build_imdb_database
from repro.suites.tpch import ALL_QUERIES, tpch_engine
from repro.update import UpdateBlackBox


class TestFullSynthesisWorkflow:
    """The paper's Figure 3 pipeline: source DB → model → data → target DB
    → verification, fully automatic."""

    def test_imdb_workflow(self, tmp_path):
        source = build_imdb_database(
            str(tmp_path / "source.db"), movies=150, people=200, seed=21
        )
        project = DBSynthProject(name="imdb", source=source)
        project.extract()
        project.profile()
        project.build_model()
        project.save(str(tmp_path / "project"))

        # Reload from disk (a vendor receiving only the model + artifacts,
        # never the data — the paper's privacy story).
        schema, artifacts = DBSynthProject.load_saved(str(tmp_path / "project"))
        engine = GenerationEngine(schema, artifacts)

        target = SQLiteAdapter(str(tmp_path / "target.db"))
        SchemaTranslator().apply(schema, target)
        DataLoader(target).load(engine)

        report = FidelityChecker(source, target).run(default_queries(schema))
        assert report.pass_rate > 0.85, "\n".join(report.summary_lines())

        # Scaled-up synthesis: 3x the original size, still valid refs.
        schema.properties.override("SF", 3)
        big_engine = GenerationEngine(schema, artifacts)
        big_target = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, big_target)
        big_target.execute_script("PRAGMA foreign_keys = ON;")
        DataLoader(big_target).load(big_engine)
        assert big_target.row_count("movies") == 450
        orphans = big_target.execute(
            "SELECT COUNT(*) FROM cast_members cm LEFT JOIN movies m "
            "ON cm.movie_id = m.movie_id WHERE m.movie_id IS NULL"
        )[0][0]
        assert orphans == 0

        source.close()
        target.close()
        big_target.close()

    def test_model_edit_then_generate(self, tmp_path):
        # The demo's final act: edit an extracted model (add a column,
        # refine a correlation) and regenerate.
        source = build_imdb_database(movies=50, people=60, seed=33)
        project = DBSynthProject(name="imdb", source=source)
        result = project.build_model()
        schema = result.schema

        from repro.model.schema import Field, GeneratorSpec

        movies = schema.table_by_name("movies")
        movies.fields.append(Field.of(
            "synthetic_score", "DOUBLE",
            GeneratorSpec("FormulaGenerator",
                          {"formula": "[rating] * 10", "places": 1}),
        ))
        engine = GenerationEngine(schema, result.artifacts)
        names = engine.bound_table("movies").column_names
        rating_index = names.index("rating")
        score_index = names.index("synthetic_score")
        for row in engine.iter_rows("movies", 0, 20):
            assert row[score_index] == pytest.approx(
                round(row[rating_index] * 10, 1)
            )
        source.close()


class TestTpchRoundTrip:
    def test_xml_save_load_generate(self, tmp_path):
        engine = tpch_engine(0.001)
        path = str(tmp_path / "tpch.xml")
        schema_xml.dump(engine.schema, path)
        reloaded = schema_xml.load(path)
        engine2 = GenerationEngine(reloaded, engine.artifacts)
        a = [tuple(map(str, r)) for r in engine.iter_rows("orders", 0, 50)]
        b = [tuple(map(str, r)) for r in engine2.iter_rows("orders", 0, 50)]
        assert a == b

    def test_queries_stable_across_parallelism(self, tmp_path):
        # Load the same SF via 1 worker and 4 workers; queries must agree
        # exactly (ordering-independent aggregates).
        results = []
        for workers in (1, 4):
            engine = tpch_engine(0.0005)
            target = SQLiteAdapter(":memory:")
            SchemaTranslator().apply(engine.schema, target)
            # Generate through the scheduler into SQL, then load.
            config = OutputConfig(kind="memory", format="sql")
            generate(engine, config, workers=workers, package_size=128)
            for table in engine.sizes:
                target.execute_script(config.memory_output(table))
            results.append(target.execute(ALL_QUERIES["Q6"]))
            target.close()
        assert results[0] == results[1]


class TestUpdateWorkflow:
    def test_epochs_applied_to_database(self):
        from tests.conftest import demo_schema

        schema = demo_schema()
        adapter = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(schema, adapter)
        engine = GenerationEngine(schema)
        DataLoader(adapter).load(engine)

        blackbox = UpdateBlackBox(
            schema, insert_fraction=0.1, update_fraction=0.2, delete_fraction=0.05
        )
        for epoch in (1, 2, 3):
            blackbox.apply_epoch(adapter, "customer", epoch, "c_id")
        expected = 60 + 3 * 6 - 3 * 3
        assert adapter.row_count("customer") == expected
        adapter.close()


class TestClusterSimulation:
    def test_multiprocess_cluster_produces_counted_output(self):
        from repro.suites.bigbench import bigbench_schema, bigbench_artifacts

        schema = bigbench_schema(0.0003)
        cluster = MetaScheduler(schema, bigbench_artifacts()).run(
            nodes=2, processes=True
        )
        single = MetaScheduler(schema, bigbench_artifacts()).run(
            nodes=1, processes=False
        )
        assert cluster.rows == single.rows
        assert cluster.bytes_written == single.bytes_written
