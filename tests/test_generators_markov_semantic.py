"""Tests for the Markov text generator and the semantic generators."""

from __future__ import annotations

import re

import pytest

from repro.exceptions import ModelError
from repro.generators.base import ArtifactStore
from repro.model.schema import GeneratorSpec
from repro.text import corpus
from repro.text.markov import train_chain
from repro.text.tokenizer import words
from tests.conftest import field_values, single_field_engine

TRAINING = [
    "shipping labels arrive before the weekly audit",
    "weekly audit reports confuse the shipping clerks",
    "clerks file reports before labels arrive",
]


def _artifacts() -> ArtifactStore:
    store = ArtifactStore()
    store.put("markov:test", train_chain(TRAINING))
    return store


class TestMarkovChainGenerator:
    def test_generates_trained_bigrams_only(self):
        spec = GeneratorSpec(
            "MarkovChainGenerator", {"model": "markov:test", "min": 2, "max": 8}
        )
        observed = set()
        for text in TRAINING:
            tokens = words(text)
            observed.update(zip(tokens, tokens[1:]))
        for value in field_values(spec, rows=100, type_text="TEXT",
                                  artifacts=_artifacts()):
            tokens = words(value)
            for bigram in zip(tokens, tokens[1:]):
                assert bigram in observed

    def test_word_bounds(self):
        spec = GeneratorSpec(
            "MarkovChainGenerator", {"model": "markov:test", "min": 3, "max": 5}
        )
        for value in field_values(spec, rows=100, type_text="TEXT",
                                  artifacts=_artifacts()):
            assert 3 <= len(words(value)) <= 5

    def test_max_chars_clips_at_word_boundary(self):
        spec = GeneratorSpec(
            "MarkovChainGenerator",
            {"model": "markov:test", "min": 5, "max": 12, "max_chars": 25},
        )
        for value in field_values(spec, rows=100, type_text="TEXT",
                                  artifacts=_artifacts()):
            assert len(value) <= 25
            assert not value.endswith(" ")

    def test_field_length_used_as_default_clip(self):
        spec = GeneratorSpec(
            "MarkovChainGenerator", {"model": "markov:test", "min": 5, "max": 12}
        )
        for value in field_values(spec, rows=100, type_text="VARCHAR(30)",
                                  artifacts=_artifacts()):
            assert len(value) <= 30

    def test_missing_model_param(self):
        with pytest.raises(ModelError):
            single_field_engine(GeneratorSpec("MarkovChainGenerator"),
                                type_text="TEXT", artifacts=_artifacts())

    def test_wrong_artifact_type(self):
        store = ArtifactStore()
        store.put("markov:bad", "not a chain")
        spec = GeneratorSpec("MarkovChainGenerator", {"model": "markov:bad"})
        with pytest.raises(ModelError, match="not a Markov chain"):
            single_field_engine(spec, type_text="TEXT", artifacts=store)

    def test_bad_bounds(self):
        spec = GeneratorSpec(
            "MarkovChainGenerator", {"model": "markov:test", "min": 5, "max": 2}
        )
        with pytest.raises(ModelError):
            single_field_engine(spec, type_text="TEXT", artifacts=_artifacts())


class TestSemanticGenerators:
    def test_person_name(self):
        for value in field_values(GeneratorSpec("PersonNameGenerator"), rows=50,
                                  type_text="TEXT"):
            first, last = value.split(" ", 1)
            assert first in corpus.FIRST_NAMES
            assert last in corpus.LAST_NAMES

    def test_person_name_styles(self):
        firsts = field_values(
            GeneratorSpec("PersonNameGenerator", {"style": "first"}),
            rows=20, type_text="TEXT",
        )
        assert all(v in corpus.FIRST_NAMES for v in firsts)
        lasts = field_values(
            GeneratorSpec("PersonNameGenerator", {"style": "last"}),
            rows=20, type_text="TEXT",
        )
        assert all(v in corpus.LAST_NAMES for v in lasts)

    def test_company_name(self):
        for value in field_values(GeneratorSpec("CompanyNameGenerator"), rows=30,
                                  type_text="TEXT"):
            assert value.split()[-1] in corpus.COMPANY_SUFFIXES

    def test_address_shape(self):
        pattern = re.compile(r"^\d+ \w+ \w+, \w+$")
        for value in field_values(GeneratorSpec("AddressGenerator"), rows=50,
                                  type_text="TEXT"):
            assert pattern.match(value), value

    def test_city_and_country_from_lists(self):
        cities = field_values(GeneratorSpec("CityGenerator"), rows=30, type_text="TEXT")
        assert all(c in corpus.CITIES for c in cities)
        countries = field_values(GeneratorSpec("CountryGenerator"), rows=30,
                                 type_text="TEXT")
        assert all(c in corpus.COUNTRIES for c in countries)

    def test_email_shape(self):
        pattern = re.compile(r"^[a-z]+\.[a-z]+\d+@[a-z.]+$")
        for value in field_values(GeneratorSpec("EmailGenerator"), rows=50,
                                  type_text="TEXT"):
            assert pattern.match(value), value

    def test_phone_shape(self):
        pattern = re.compile(r"^\d{2}-\d{3}-\d{3}-\d{4}$")
        for value in field_values(GeneratorSpec("PhoneGenerator"), rows=50,
                                  type_text="TEXT"):
            assert pattern.match(value), value

    def test_url_shape(self):
        pattern = re.compile(r"^https?://[a-z]+-[a-z]+\.[a-z]+/[a-z]+$")
        for value in field_values(GeneratorSpec("UrlGenerator"), rows=50,
                                  type_text="TEXT"):
            assert pattern.match(value), value

    def test_text_generator_bounds(self):
        spec = GeneratorSpec("TextGenerator", {"min": 4, "max": 9})
        for value in field_values(spec, rows=100, type_text="TEXT"):
            assert 4 <= len(words(value)) <= 9

    def test_text_generator_clips_to_field(self):
        spec = GeneratorSpec("TextGenerator", {"min": 10, "max": 20})
        for value in field_values(spec, rows=50, type_text="VARCHAR(40)"):
            assert len(value) <= 40

    def test_all_semantic_generators_deterministic(self):
        for name in ("PersonNameGenerator", "CompanyNameGenerator",
                     "AddressGenerator", "CityGenerator", "CountryGenerator",
                     "EmailGenerator", "PhoneGenerator", "UrlGenerator",
                     "TextGenerator"):
            spec = GeneratorSpec(name)
            assert field_values(spec, rows=10, type_text="TEXT") == field_values(
                spec, rows=10, type_text="TEXT"
            ), name
