"""Failure injection: errors must surface, not corrupt output."""

from __future__ import annotations

import pytest

from repro.engine import GenerationEngine
from repro.exceptions import GenerationError, OutputError
from repro.generators.base import GenerationContext, Generator
from repro.generators.registry import register
from repro.model.schema import Field, GeneratorSpec, Schema, Table
from repro.output.config import OutputConfig
from repro.output.sinks import Sink
from repro.scheduler.scheduler import Scheduler
from tests.conftest import demo_schema


@register("FailingGenerator")
class FailingGenerator(Generator):
    """Raises after ``after`` values (test fixture)."""

    def bind(self, ctx) -> None:
        self._after = int(self.spec.params.get("after", 10))

    def generate(self, ctx: GenerationContext) -> object:
        if ctx.row >= self._after:
            raise GenerationError(f"synthetic failure at row {ctx.row}")
        return ctx.row


class FailingSink(Sink):
    """Raises on the nth write."""

    def __init__(self, fail_at: int = 2) -> None:
        super().__init__()
        self._writes = 0
        self._fail_at = fail_at

    def write(self, chunk: str) -> None:
        self._writes += 1
        if self._writes >= self._fail_at:
            raise OutputError("synthetic sink failure")
        self.bytes_written += len(chunk)


class TestGeneratorFailures:
    def _schema(self, after: int) -> Schema:
        schema = Schema("fail", seed=1)
        schema.add_table(Table("t", "100", [
            Field.of("x", "BIGINT", GeneratorSpec("FailingGenerator",
                                                  {"after": after})),
        ]))
        return schema

    def test_failure_propagates_serial(self):
        engine = GenerationEngine(self._schema(after=10))
        with pytest.raises(GenerationError, match="synthetic failure"):
            list(engine.iter_rows("t"))

    def test_failure_propagates_from_worker_threads(self):
        engine = GenerationEngine(self._schema(after=10))
        scheduler = Scheduler(engine, OutputConfig(kind="null"), workers=4,
                              package_size=5)
        with pytest.raises(GenerationError, match="synthetic failure"):
            scheduler.run()

    def test_failure_in_one_table_does_not_mask_error(self):
        schema = self._schema(after=0)
        engine = GenerationEngine(schema)
        with pytest.raises(GenerationError):
            Scheduler(engine, OutputConfig(kind="null"), workers=2).run()


class TestSinkFailures:
    def test_sink_write_failure_propagates(self, monkeypatch):
        schema = demo_schema()
        engine = GenerationEngine(schema)
        config = OutputConfig(kind="null")
        failing = FailingSink(fail_at=1)
        monkeypatch.setattr(config, "new_sink", lambda table: failing)
        scheduler = Scheduler(engine, config, workers=2, package_size=10)
        with pytest.raises(OutputError, match="synthetic sink failure"):
            scheduler.run()

    def test_file_sink_to_unwritable_path(self):
        from repro.output.sinks import FileSink

        with pytest.raises(OutputError):
            FileSink("/proc/definitely/not/writable/file.tbl")


class TestRecoveryAfterFailure:
    def test_engine_usable_after_failed_run(self):
        # A failure in one run must not poison the engine for the next.
        schema = Schema("fail2", seed=1)
        schema.add_table(Table("bad", "20", [
            Field.of("x", "BIGINT", GeneratorSpec("FailingGenerator",
                                                  {"after": 5})),
        ]))
        schema.add_table(Table("good", "20", [
            Field.of("y", "BIGINT", GeneratorSpec("IdGenerator")),
        ]))
        engine = GenerationEngine(schema)
        with pytest.raises(GenerationError):
            list(engine.iter_rows("bad"))
        assert len(list(engine.iter_rows("good"))) == 20


class TestQueryAggregateRegression:
    def test_sum_and_avg_over_same_column(self):
        """Regression: two aggregates over one column must not
        double-count (SUM accumulated once per aggregate per row)."""
        from repro.core.queries import Aggregate, Query, VirtualExecutor

        schema = Schema("agg", seed=2)
        schema.add_table(Table("t", "100", [
            Field.of("v", "INTEGER", GeneratorSpec(
                "IntGenerator", {"min": 1, "max": 10}
            )),
        ]))
        executor = VirtualExecutor(schema)
        result = executor.execute(Query("t", [
            Aggregate("count"),
            Aggregate("sum", "v"),
            Aggregate("avg", "v"),
            Aggregate("min", "v"),
            Aggregate("max", "v"),
        ]))
        assert result["COUNT(*)"] == 100
        assert result["AVG(v)"] == pytest.approx(result["SUM(v)"] / 100)
        engine = GenerationEngine(schema)
        true_sum = sum(row[0] for row in engine.iter_rows("t"))
        assert result["SUM(v)"] == true_sum
