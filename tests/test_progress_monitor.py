"""ProgressMonitor satellite tests: callback rate-limiting, lossless
concurrent accounting, and uniform tracking of undeclared tables."""

from __future__ import annotations

import threading
import time

from repro.scheduler.progress import ProgressMonitor


class TestCallbackRateLimiting:
    def test_min_interval_suppresses_bursts(self):
        seen = []
        monitor = ProgressMonitor(1000, callback=seen.append, min_interval=3600)
        for _ in range(100):
            monitor.add("t", 1, 1)
        assert len(seen) <= 1

    def test_zero_interval_fires_every_add(self):
        seen = []
        monitor = ProgressMonitor(10, callback=seen.append, min_interval=0.0)
        for _ in range(10):
            monitor.add("t", 1, 1)
        assert len(seen) == 10

    def test_fires_again_after_interval_elapses(self):
        seen = []
        monitor = ProgressMonitor(10, callback=seen.append, min_interval=0.01)
        monitor.add("t", 1, 1)
        time.sleep(0.02)
        monitor.add("t", 1, 1)
        assert len(seen) == 2

    def test_callback_sees_consistent_snapshot(self):
        snapshots = []
        monitor = ProgressMonitor(100, callback=snapshots.append, min_interval=0.0)
        monitor.add("t", 40, 4096)
        assert snapshots[0].rows_done == 40
        assert snapshots[0].bytes_written == 4096


class TestConcurrentAccounting:
    def test_no_rows_or_bytes_lost(self):
        monitor = ProgressMonitor(8 * 1000, table_totals={"a": 4000, "b": 4000})
        barrier = threading.Barrier(8)

        def worker(index: int):
            table = "a" if index % 2 == 0 else "b"
            barrier.wait()
            for _ in range(1000):
                monitor.add(table, 1, 3)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snapshot = monitor.snapshot()
        assert snapshot.rows_done == 8000
        assert snapshot.bytes_written == 24000
        assert monitor.table_progress() == {"a": (4000, 4000), "b": (4000, 4000)}

    def test_concurrent_adds_with_callback(self):
        seen = []
        monitor = ProgressMonitor(4000, callback=seen.append, min_interval=0.0)

        def worker():
            for _ in range(500):
                monitor.add("t", 1, 1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert monitor.snapshot().rows_done == 4000
        assert len(seen) == 4000


class TestUnknownTableTracking:
    def test_unknown_table_counted_without_totals(self):
        monitor = ProgressMonitor(100)  # no table_totals at all
        monitor.add("surprise", 10, 100)
        assert monitor.table_progress() == {"surprise": (10, 0)}

    def test_unknown_table_counted_alongside_known(self):
        monitor = ProgressMonitor(100, table_totals={"known": 50})
        monitor.add("known", 5, 10)
        monitor.add("unknown", 7, 10)
        progress = monitor.table_progress()
        assert progress["known"] == (5, 50)
        assert progress["unknown"] == (7, 0)

    def test_unknown_table_accumulates(self):
        monitor = ProgressMonitor(100, table_totals={"known": 50})
        monitor.add("unknown", 7, 10)
        monitor.add("unknown", 3, 10)
        assert monitor.table_progress()["unknown"] == (10, 0)

    def test_declared_tables_always_present(self):
        monitor = ProgressMonitor(100, table_totals={"a": 60, "b": 40})
        monitor.add("a", 1, 1)
        assert monitor.table_progress() == {"a": (1, 60), "b": (0, 40)}
