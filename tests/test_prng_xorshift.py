"""Unit tests for the xorshift PRNGs and hash primitives."""

from __future__ import annotations

import pytest

from repro.prng.xorshift import (
    MASK64,
    XorShift64Star,
    XorShift128Plus,
    combine64,
    mix64,
    splitmix64,
)


class TestSplitMix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_state_advances(self):
        state, _ = splitmix64(42)
        assert state != 42

    def test_outputs_in_64_bits(self):
        state = 0
        for _ in range(100):
            state, out = splitmix64(state)
            assert 0 <= out <= MASK64


class TestMix64:
    def test_deterministic(self):
        assert mix64(7) == mix64(7)

    def test_distinct_for_small_inputs(self):
        outputs = {mix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    def test_avalanche_on_single_bit_flip(self):
        # Flipping one input bit should flip roughly half the output bits.
        a = mix64(0x1234)
        b = mix64(0x1235)
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48

    def test_masks_to_64_bits(self):
        assert 0 <= mix64(2**70 + 3) <= MASK64


class TestCombine64:
    def test_differs_by_index(self):
        seeds = {combine64(99, i) for i in range(256)}
        assert len(seeds) == 256

    def test_differs_by_seed(self):
        assert combine64(1, 5) != combine64(2, 5)

    def test_order_matters(self):
        assert combine64(1, 5) != combine64(5, 1)


class TestXorShift64Star:
    def test_repeatable_stream(self):
        a = XorShift64Star(123)
        b = XorShift64Star(123)
        assert [a.next_u64() for _ in range(50)] == [b.next_u64() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = XorShift64Star(1)
        b = XorShift64Star(2)
        assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]

    def test_reseed_restarts_stream(self):
        rng = XorShift64Star(5)
        first = [rng.next_u64() for _ in range(5)]
        rng.reseed(5)
        assert [rng.next_u64() for _ in range(5)] == first

    def test_reseed_mixed_deterministic(self):
        a = XorShift64Star()
        b = XorShift64Star()
        a.reseed_mixed(mix64(77))
        b.reseed_mixed(mix64(77))
        assert a.next_u64() == b.next_u64()

    def test_zero_seed_is_valid(self):
        rng = XorShift64Star(0)
        assert rng.next_u64() != 0

    def test_next_long_in_bound(self):
        rng = XorShift64Star(9)
        for _ in range(1000):
            assert 0 <= rng.next_long(17) < 17

    def test_next_long_rejects_nonpositive(self):
        rng = XorShift64Star(9)
        with pytest.raises(ValueError):
            rng.next_long(0)

    def test_next_range_inclusive(self):
        rng = XorShift64Star(9)
        values = {rng.next_range(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_next_range_rejects_empty(self):
        rng = XorShift64Star(9)
        with pytest.raises(ValueError):
            rng.next_range(5, 4)

    def test_next_double_unit_interval(self):
        rng = XorShift64Star(9)
        for _ in range(1000):
            value = rng.next_double()
            assert 0.0 <= value < 1.0

    def test_next_double_mean_near_half(self):
        rng = XorShift64Star(31)
        n = 20_000
        mean = sum(rng.next_double() for _ in range(n)) / n
        assert abs(mean - 0.5) < 0.01

    def test_uniformity_chi_squared(self):
        # 16 buckets over 16k draws: chi-squared should be modest.
        rng = XorShift64Star(123)
        buckets = [0] * 16
        n = 16_000
        for _ in range(n):
            buckets[rng.next_long(16)] += 1
        expected = n / 16
        chi2 = sum((b - expected) ** 2 / expected for b in buckets)
        # 15 degrees of freedom; 99.9th percentile is ~37.7.
        assert chi2 < 40

    def test_fork_independent(self):
        rng = XorShift64Star(77)
        fork_a = rng.fork(0)
        fork_b = rng.fork(1)
        assert [fork_a.next_u64() for _ in range(5)] != [
            fork_b.next_u64() for _ in range(5)
        ]


class TestXorShift128Plus:
    def test_repeatable_stream(self):
        a = XorShift128Plus(123)
        b = XorShift128Plus(123)
        assert [a.next_u64() for _ in range(50)] == [b.next_u64() for _ in range(50)]

    def test_reseed(self):
        rng = XorShift128Plus(4)
        first = rng.next_u64()
        rng.reseed(4)
        assert rng.next_u64() == first

    def test_bounds(self):
        rng = XorShift128Plus(8)
        for _ in range(500):
            assert 0 <= rng.next_long(100) < 100
            assert 0.0 <= rng.next_double() < 1.0

    def test_next_long_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            XorShift128Plus(1).next_long(-3)

    def test_no_short_cycle(self):
        rng = XorShift128Plus(15)
        seen = [rng.next_u64() for _ in range(10_000)]
        assert len(set(seen)) == len(seen)
