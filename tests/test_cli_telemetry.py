"""CLI telemetry: --trace/--metrics/--summary flags and the stats
subcommand."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli.main import main


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


def _generate(tmp_path, *extra: str) -> int:
    return main([
        "generate", "--suite", "tpch", "--sf", "0.001",
        "--kind", "null", "-q", *extra,
    ])


class TestGenerateTelemetryFlags:
    def test_trace_file_is_parseable_jsonl(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        assert _generate(tmp_path, "--trace", trace) == 0
        lines = [json.loads(line) for line in open(trace, encoding="utf-8")]
        assert lines[0]["event"] == "meta"
        names = {line["name"] for line in lines[1:]}
        assert "scheduler.run" in names
        assert "scheduler.package" in names
        assert "sink.write" in names

    def test_metrics_dump_matches_report(self, tmp_path, capsys):
        metrics = str(tmp_path / "metrics.prom")
        assert _generate(tmp_path, "--metrics", metrics) == 0
        out = capsys.readouterr().out
        reported_rows = int(out.split(" rows,")[0].replace(",", ""))
        text = open(metrics, encoding="utf-8").read()
        counted = sum(
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("rows_generated_total{")
        )
        assert counted == reported_rows == 8690

    def test_summary_flag_prints_digest(self, tmp_path, capsys):
        assert _generate(tmp_path, "--summary") == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "rows_generated_total" in out

    def test_per_table_breakdown_printed(self, tmp_path, capsys):
        assert main([
            "generate", "--suite", "tpch", "--sf", "0.001", "--kind", "null",
        ]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "region" in out

    def test_telemetry_state_reset_after_run(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        _generate(tmp_path, "--trace", trace)
        assert obs.active_tracer() is None
        assert obs.active_metrics() is None


class TestStatsSubcommand:
    def test_trace_summary(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        _generate(tmp_path, "--trace", trace)
        capsys.readouterr()
        assert main(["stats", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "scheduler.run" in out
        assert "scheduler.package" in out

    def test_model_generator_listing(self, capsys):
        assert main([
            "stats", "--suite", "tpch", "--sf", "0.001", "--table", "region",
        ]) == 0
        out = capsys.readouterr().out
        assert "-- region: 5 rows" in out
        assert "IdGenerator" in out

    def test_latency_sampling(self, capsys):
        assert main([
            "stats", "--suite", "tpch", "--sf", "0.001", "--table", "region",
            "--latency", "--latency-rows", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "ns" in out
        assert "IdGenerator" in out

    def test_requires_model_suite_or_trace(self, capsys):
        assert main(["stats"]) == 2
        assert "error:" in capsys.readouterr().err


class TestExtractTelemetryFlags:
    def test_extract_trace(self, tmp_path):
        from repro.suites.imdb import build_imdb_database

        source = str(tmp_path / "source.db")
        build_imdb_database(source, movies=20, people=30, seed=13).close()
        trace = str(tmp_path / "extract.jsonl")
        assert main([
            "extract", source, "-o", str(tmp_path / "proj"), "--trace", trace,
        ]) == 0
        names = {record.name for record in obs.read_trace_jsonl(trace)}
        assert "extraction.schema" in names
        assert "model.build" in names
