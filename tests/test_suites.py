"""Tests for the benchmark suites: TPC-H, SSB, BigBench-like, IMDb-like."""

from __future__ import annotations

import pytest

from repro.db.sqlite_adapter import SQLiteAdapter
from repro.core.loader import DataLoader
from repro.core.translator import SchemaTranslator
from repro.engine import GenerationEngine
from repro.model.validation import ensure_valid
from repro.output.config import OutputConfig
from repro.output.sinks import MemorySink, NullSink
from repro.scheduler import generate
from repro.suites.bigbench import bigbench_engine, bigbench_schema
from repro.suites.imdb import build_imdb_database
from repro.suites.ssb import ssb_engine, ssb_schema
from repro.suites.tpch import (
    ALL_QUERIES,
    BASE_CARDINALITIES,
    DbgenBaseline,
    scaled_size,
    tpch_engine,
    tpch_schema,
)


class TestTpchSchema:
    def test_model_valid(self):
        ensure_valid(tpch_schema(0.01))

    def test_cardinalities_at_sf1(self):
        schema = tpch_schema(1.0)
        for table, base in BASE_CARDINALITIES.items():
            assert schema.table_size(table) == base

    def test_fixed_tables_do_not_scale(self):
        schema = tpch_schema(10.0)
        assert schema.table_size("region") == 5
        assert schema.table_size("nation") == 25
        assert schema.table_size("customer") == 1_500_000

    def test_nations_and_regions_are_spec_values(self):
        engine = tpch_engine(0.001)
        regions = [row[1] for row in engine.iter_rows("region")]
        assert regions == ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
        nations = list(engine.iter_rows("nation"))
        assert nations[0][1] == "ALGERIA"
        assert nations[24][1] == "UNITED STATES"
        # n_regionkey maps into the region table.
        region_keys = {row[0] for row in engine.iter_rows("region")}
        assert all(row[2] in region_keys for row in nations)

    def test_partsupp_structure(self):
        engine = tpch_engine(0.001)
        rows = list(engine.iter_rows("partsupp", 0, 8))
        # 4 suppliers per part, distinct suppliers within a part.
        assert [r[0] for r in rows] == [1, 1, 1, 1, 2, 2, 2, 2]
        assert len({r[1] for r in rows[:4]}) == 4

    def test_partsupp_suppkey_in_range(self):
        engine = tpch_engine(0.001)
        suppliers = engine.sizes["supplier"]
        for row in engine.iter_rows("partsupp"):
            assert 1 <= row[1] <= suppliers

    def test_lineitem_order_linkage(self):
        engine = tpch_engine(0.001)
        rows = list(engine.iter_rows("lineitem", 0, 8))
        assert [r[0] for r in rows] == [1, 1, 1, 1, 2, 2, 2, 2]
        assert [r[3] for r in rows] == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_retailprice_formula(self):
        engine = tpch_engine(0.001)
        for row in engine.iter_rows("part", 0, 20):
            partkey, retail = row[0], row[7]
            expected = (90000 + ((partkey // 10) % 20001) + 100 * (partkey % 1000)) / 100
            assert retail == pytest.approx(round(expected, 2))

    def test_extendedprice_correlates_with_quantity(self):
        engine = tpch_engine(0.001)
        for row in engine.iter_rows("lineitem", 0, 50):
            quantity, price = row[4], row[5]
            assert price > 0
            assert price >= quantity * 8.99  # 900/100 floor per unit

    def test_foreign_keys_valid(self):
        engine = tpch_engine(0.0005)
        customers = engine.sizes["customer"]
        parts = engine.sizes["part"]
        for row in engine.iter_rows("orders"):
            assert 1 <= row[1] <= customers
        for row in engine.iter_rows("lineitem"):
            assert 1 <= row[1] <= parts

    def test_comment_lengths_respect_columns(self):
        engine = tpch_engine(0.001)
        for row in engine.iter_rows("part", 0, 100):
            assert len(row[8]) <= 23

    def test_deterministic(self):
        a = OutputConfig(kind="memory")
        generate(tpch_engine(0.0005), a, workers=2, package_size=64)
        b = OutputConfig(kind="memory")
        generate(tpch_engine(0.0005), b, workers=1)
        for table in BASE_CARDINALITIES:
            assert a.memory_output(table) == b.memory_output(table)

    def test_loads_into_sqlite_and_answers_queries(self):
        engine = tpch_engine(0.001)
        target = SQLiteAdapter(":memory:")
        SchemaTranslator().apply(engine.schema, target)
        DataLoader(target).load(engine)
        for name, sql in ALL_QUERIES.items():
            rows = target.execute(sql)
            assert rows is not None, name
        # Q1 groups by returnflag/linestatus: at most 6 combinations.
        assert 1 <= len(target.execute(ALL_QUERIES["Q1"])) <= 6
        target.close()

    def test_scaled_size_floor(self):
        assert scaled_size("supplier", 0.00001) == 1


class TestDbgenBaseline:
    def test_row_counts(self):
        baseline = DbgenBaseline(0.001)
        sink = MemorySink()
        rows = baseline.generate_table("customer", sink)
        assert rows == 150
        assert len(sink.getvalue().splitlines()) == 150

    def test_same_schema_shape_as_pdgf(self):
        baseline = DbgenBaseline(0.001)
        engine = tpch_engine(0.001)
        for table in baseline.TABLES:
            sink = MemorySink()
            baseline.generate_table(table, sink)
            first = sink.getvalue().splitlines()[0]
            dbgen_fields = first.rstrip("|").split("|")
            pdgf_fields = engine.bound_table(table).column_names
            assert len(dbgen_fields) == len(pdgf_fields), table

    def test_deterministic(self):
        a, b = MemorySink(), MemorySink()
        DbgenBaseline(0.001).generate_table("orders", a)
        DbgenBaseline(0.001).generate_table("orders", b)
        assert a.getvalue() == b.getvalue()

    def test_chunked_parallelism_covers_table(self):
        baseline = DbgenBaseline(0.001)
        total = 0
        for chunk in range(3):
            total += baseline.generate_table("orders", NullSink(), chunk, 3)
        assert total == baseline.table_size("orders")

    def test_chunk_validation(self):
        from repro.exceptions import GenerationError

        with pytest.raises(GenerationError):
            DbgenBaseline(0.001).generate_table("orders", NullSink(), 3, 3)

    def test_unknown_table(self):
        from repro.exceptions import GenerationError

        with pytest.raises(GenerationError):
            DbgenBaseline(0.001).generate_table("ghost", NullSink())

    def test_generate_all(self):
        baseline = DbgenBaseline(0.0005)
        counts = baseline.generate_all(lambda table, chunk: NullSink())
        assert set(counts) == set(baseline.TABLES)
        assert counts["lineitem"] == 3000


class TestSsb:
    def test_model_valid(self):
        ensure_valid(ssb_schema(0.01))

    def test_generates(self):
        engine = ssb_engine(0.001)
        rows = list(engine.iter_rows("lineorder", 0, 20))
        assert len(rows) == 20

    def test_revenue_formula(self):
        engine = ssb_engine(0.001)
        columns = engine.bound_table("lineorder").column_names
        price_index = columns.index("lo_extendedprice")
        discount_index = columns.index("lo_discount")
        revenue_index = columns.index("lo_revenue")
        for row in engine.iter_rows("lineorder", 0, 30):
            expected = round(row[price_index] * (100 - row[discount_index]) / 100, 2)
            assert row[revenue_index] == pytest.approx(expected)

    def test_skewed_references_concentrate(self):
        uniform_engine = ssb_engine(0.001, skew=0.0)
        skewed_engine = ssb_engine(0.001, skew=1.2)
        columns = uniform_engine.bound_table("lineorder").column_names
        cust_index = columns.index("lo_custkey")

        def top_share(engine):
            refs = [row[cust_index] for row in engine.iter_rows("lineorder")]
            counts = sorted(
                (refs.count(k) for k in set(refs)), reverse=True
            )
            top = sum(counts[: max(len(counts) // 100, 1)])
            return top / len(refs)

        assert top_share(skewed_engine) > top_share(uniform_engine) * 2


class TestBigBench:
    def test_model_valid(self):
        ensure_valid(bigbench_schema(0.01))

    def test_reviews_reference_structured_entities(self):
        engine = bigbench_engine(0.001)
        customers = engine.sizes["customer"]
        items = engine.sizes["item"]
        for row in engine.iter_rows("product_reviews"):
            assert 1 <= row[1] <= items
            assert 1 <= row[2] <= customers
            assert 1 <= row[3] <= 5
            assert isinstance(row[4], str) and row[4]

    def test_clickstream_anonymous_sessions(self):
        engine = bigbench_engine(0.001)
        users = [row[2] for row in engine.iter_rows("web_clickstreams", 0, 2000)]
        anonymous = sum(1 for u in users if u is None)
        assert 0.2 < anonymous / len(users) < 0.4

    def test_net_paid_formula(self):
        engine = bigbench_engine(0.001)
        for row in engine.iter_rows("store_sales", 0, 50):
            quantity, price, net = row[4], row[5], row[6]
            assert net == pytest.approx(round(quantity * price, 2))


class TestImdbBuilder:
    def test_deterministic(self):
        a = build_imdb_database(movies=30, people=40, seed=5)
        b = build_imdb_database(movies=30, people=40, seed=5)
        assert a.execute("SELECT * FROM movies ORDER BY movie_id") == b.execute(
            "SELECT * FROM movies ORDER BY movie_id"
        )
        a.close()
        b.close()

    def test_different_seeds_differ(self):
        a = build_imdb_database(movies=30, seed=5)
        b = build_imdb_database(movies=30, seed=6)
        assert a.execute("SELECT title FROM movies") != b.execute(
            "SELECT title FROM movies"
        )
        a.close()
        b.close()

    def test_referential_integrity(self, imdb_adapter):
        orphans = imdb_adapter.execute(
            "SELECT COUNT(*) FROM cast_members cm LEFT JOIN movies m "
            "ON cm.movie_id = m.movie_id WHERE m.movie_id IS NULL"
        )[0][0]
        assert orphans == 0

    def test_has_nulls_to_profile(self, imdb_adapter):
        assert imdb_adapter.null_fraction("movies", "plot") > 0

    def test_has_free_text(self, imdb_adapter):
        plots = imdb_adapter.sample_column("movies", "plot", limit=10)
        assert any(len(p.split()) > 3 for p in plots)
