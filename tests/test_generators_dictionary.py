"""Tests for the DictList generator."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.generators.base import ArtifactStore
from repro.model.schema import GeneratorSpec
from repro.text.dictionary import WeightedDictionary
from tests.conftest import field_values, single_field_engine


class TestInlineValues:
    def test_only_listed_values(self):
        spec = GeneratorSpec("DictListGenerator", {"values": ["x", "y", "z"]})
        assert set(field_values(spec, rows=300, type_text="TEXT")) == {"x", "y", "z"}

    def test_weights(self):
        spec = GeneratorSpec(
            "DictListGenerator", {"values": ["hot", "cold"], "weights": [0.95, 0.05]}
        )
        values = field_values(spec, rows=2000, type_text="TEXT")
        assert values.count("hot") / len(values) > 0.9

    def test_weights_length_mismatch(self):
        spec = GeneratorSpec(
            "DictListGenerator", {"values": ["a", "b"], "weights": [1.0]}
        )
        with pytest.raises(ModelError):
            single_field_engine(spec, type_text="TEXT")

    def test_empty_values_rejected(self):
        spec = GeneratorSpec("DictListGenerator", {"values": []})
        with pytest.raises(ModelError):
            single_field_engine(spec, type_text="TEXT")

    def test_no_source_rejected(self):
        with pytest.raises(ModelError):
            single_field_engine(GeneratorSpec("DictListGenerator"), type_text="TEXT")


class TestArtifactDictionary:
    def test_samples_from_artifact(self):
        artifacts = ArtifactStore()
        artifacts.put("dict:test", WeightedDictionary.uniform(["apple", "pear"]))
        spec = GeneratorSpec("DictListGenerator", {"dictionary": "dict:test"})
        values = field_values(spec, rows=200, type_text="TEXT", artifacts=artifacts)
        assert set(values) == {"apple", "pear"}

    def test_missing_artifact(self):
        spec = GeneratorSpec("DictListGenerator", {"dictionary": "dict:ghost"})
        from repro.exceptions import GenerationError

        with pytest.raises(GenerationError, match="unknown model artifact"):
            single_field_engine(spec, type_text="TEXT")

    def test_wrong_artifact_type(self):
        artifacts = ArtifactStore()
        artifacts.put("dict:bad", object())
        spec = GeneratorSpec("DictListGenerator", {"dictionary": "dict:bad"})
        with pytest.raises(ModelError, match="not a dictionary"):
            single_field_engine(spec, type_text="TEXT", artifacts=artifacts)


class TestByRow:
    def test_positional_assignment(self):
        spec = GeneratorSpec(
            "DictListGenerator", {"values": ["a", "b", "c"], "by_row": True}
        )
        assert field_values(spec, rows=5, type_text="TEXT") == ["a", "b", "c", "a", "b"]

    def test_as_int(self):
        spec = GeneratorSpec(
            "DictListGenerator",
            {"values": ["0", "4", "2"], "by_row": True, "as_int": True},
        )
        assert field_values(spec, rows=3) == [0, 4, 2]

    def test_xml_style_string_flags(self):
        # Flags arriving from XML as strings must parse correctly.
        spec = GeneratorSpec(
            "DictListGenerator",
            {"values": ["a", "b"], "by_row": "false", "unique_suffix": "false"},
        )
        values = field_values(spec, rows=50, type_text="TEXT")
        assert set(values) <= {"a", "b"}


class TestUniqueSuffix:
    def test_extends_value_domain(self):
        # Paper §6: built-in dictionaries increase the value domain in
        # scale-out scenarios.
        plain_spec = GeneratorSpec("DictListGenerator", {"values": ["n1", "n2"]})
        suffixed_spec = GeneratorSpec(
            "DictListGenerator",
            {"values": ["n1", "n2"], "unique_suffix": True, "domain": 10_000},
        )
        plain = set(field_values(plain_spec, rows=500, type_text="TEXT"))
        suffixed = set(field_values(suffixed_spec, rows=500, type_text="TEXT"))
        assert len(plain) == 2
        assert len(suffixed) > 100

    def test_suffix_preserves_base_value(self):
        spec = GeneratorSpec(
            "DictListGenerator", {"values": ["base"], "unique_suffix": True}
        )
        for value in field_values(spec, rows=50, type_text="TEXT"):
            assert value.startswith("base#")

    def test_deterministic(self):
        spec = GeneratorSpec(
            "DictListGenerator", {"values": ["v"], "unique_suffix": True}
        )
        assert field_values(spec, rows=30, type_text="TEXT") == field_values(
            spec, rows=30, type_text="TEXT"
        )
